"""Class-level thread-role inference and lock/attribute dataflow.

The RB2xx concurrency rules need to know, for every class, *which thread
contexts each method can run on* and *which ``self._*`` fields it touches
under which locks*. This module computes that table once per class so the
rules stay declarative:

* **Thread roles.** A method's roles are the thread contexts that can
  execute it. Seeds: every public method (and dunder) runs on the
  caller's thread (role ``main``); every ``threading.Thread(target=
  self._m)`` spawn gives ``_m`` a role named after the thread (the
  constant ``name=`` kwarg when present); ``executor.submit(self._m)``
  hand-offs contribute a ``pool`` role and ``signal.signal(sig,
  self._m)`` handlers a ``signal`` role. Roles then propagate through
  the intra-class call graph (``self.other()`` calls and bound-method/
  property reads) to a fixpoint. Roles a class is *driven* with from
  outside its own spawns — a ``ResultStore`` served by ``StoreServer``
  handler threads — cannot be inferred and are declared centrally in
  :attr:`repro.analysis.framework.AnalysisConfig.thread_roles`.

* **Attribute dataflow.** Every ``self.X`` access is recorded as a
  ``read``, a ``rebind`` (``self.X = ...`` — an atomic reference swap
  under the GIL), or a ``mutate`` (``self.X[k] = ...``, ``del
  self.X[k]``, ``self.X += ...``, ``self.X.append(...)`` and friends —
  compound read-modify-write operations), together with the set of
  lock guards lexically held at the access. ``__init__`` is excluded:
  construction happens-before publication.

* **Lock discipline.** ``with self.X:`` over an attribute assigned a
  ``threading.Lock``/``RLock``/``Condition``/``Semaphore`` pushes a
  guard; so does ``with name:`` over a local/parameter whose name is
  lock-shaped (``*lock*``, ``_cv``) or locally assigned a lock factory.
  Acquisitions record the guards already held (the RB203 ordering
  graph); blocking calls record the guards held at the call (RB202);
  ``cond.wait()`` on a *held* condition is exempt — waiting releases it.

Everything here is a heuristic over one class body: it under-approximates
(cross-object aliasing is invisible) rather than guessing, so the rules'
false-positive rate on idiomatic code can stay zero.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.framework import AnalysisConfig, ModuleSource

__all__ = [
    "AttrAccess",
    "ClassConcurrency",
    "LockAcquisition",
    "MethodConcurrency",
    "SpawnSite",
    "build_class_tables",
]

#: Callers' thread context: every public method can run on it.
MAIN_ROLE = "main"

#: ``threading`` factories whose instances are *locks* for guard/ordering
#: purposes (a ``Condition`` wraps a lock; acquiring it is acquiring one).
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Factories whose instances are synchronization primitives: these
#: attributes are internally thread-safe and exempt from the shared-state
#: race analysis (``Event.set()`` needs no caller-side lock).
SYNC_FACTORIES = LOCK_FACTORIES | frozenset({"Event", "Barrier", "local"})

#: Container methods that mutate their receiver in place — a call through
#: ``self.X.<method>(...)`` is a compound write to ``X``.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
    }
)

#: Terminal callable names that block unconditionally (socket/frame I/O,
#: sleeps, subprocesses, file reads/writes). ``join``/``wait``/``result``
#: need receiver context and are classified separately.
_BLOCKING_SIMPLE = {
    "recv_frame": "frame receive",
    "send_frame": "frame send",
    "recv": "socket receive",
    "recv_into": "socket receive",
    "recvfrom": "socket receive",
    "send": "socket send",
    "sendall": "socket send",
    "sendto": "socket send",
    "accept": "socket accept",
    "connect": "socket connect",
    "create_connection": "socket connect",
    "sleep": "sleep",
    "check_call": "subprocess",
    "check_output": "subprocess",
    "communicate": "subprocess",
    "Popen": "subprocess",
    "open": "file I/O",
    "read_text": "file I/O",
    "write_text": "file I/O",
    "read_bytes": "file I/O",
    "write_bytes": "file I/O",
}


def _terminal_name(func: ast.AST) -> str | None:
    """The last dotted component of a callable expression."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dotted_parts(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-dotted shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _is_self_attr(node: ast.AST) -> str | None:
    """The attribute name if ``node`` is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lockish_name(name: str) -> bool:
    """Heuristic: does a bare name denote a lock (``send_lock``, ``cv``)?"""
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered or lowered == "cv" or lowered.endswith("_cv")


@dataclass
class AttrAccess:
    """One ``self.X`` access: what kind, where, and under which guards."""

    attr: str
    kind: str  # "read" | "rebind" | "mutate"
    method: str
    node: ast.AST
    guards: tuple[str, ...]


@dataclass
class SpawnSite:
    """One thread/executor/signal hand-off found in a method body."""

    node: ast.AST
    via: str  # "thread" | "pool" | "signal"
    target: str | None  # self-method name the context executes, if any
    role: str
    daemon: bool
    binding: tuple[str, ...] | None  # ("attr", X) | ("local", method, name)


@dataclass
class LockAcquisition:
    """One guard acquisition and the guards already held at that point."""

    lock: str
    node: ast.AST
    held: tuple[str, ...]


@dataclass
class BlockingCall:
    """One potentially blocking call and the guards held around it."""

    node: ast.AST
    reason: str
    held: tuple[str, ...]


@dataclass
class MethodConcurrency:
    """Everything the rules need to know about one method."""

    name: str
    node: ast.AST
    roles: set[str] = field(default_factory=set)
    accesses: list[AttrAccess] = field(default_factory=list)
    acquisitions: list[LockAcquisition] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    #: Intra-class call edges: (callee, guards held at the call site, node).
    calls: list[tuple[str, tuple[str, ...], ast.AST]] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    #: Thread bindings this method joins (see :class:`SpawnSite.binding`).
    joins: set[tuple[str, ...]] = field(default_factory=set)
    #: Thread bindings flipped to daemon after construction (``t.daemon = True``).
    daemonized: set[tuple[str, ...]] = field(default_factory=set)


@dataclass
class ClassConcurrency:
    """The per-class thread-role and dataflow table the RB2xx rules consume."""

    name: str
    node: ast.ClassDef
    relpath: str
    #: lock-shaped attribute -> factory name ("Lock", "RLock", ...).
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: All synchronization-primitive attributes (locks + events + ...).
    sync_attrs: set[str] = field(default_factory=set)
    methods: dict[str, MethodConcurrency] = field(default_factory=dict)

    def roles_of(self, method: str) -> frozenset[str]:
        info = self.methods.get(method)
        return frozenset(info.roles) if info is not None else frozenset()

    def attr_accesses(self) -> dict[str, list[AttrAccess]]:
        """Every ``self.X`` access across all methods, grouped by attribute."""
        grouped: dict[str, list[AttrAccess]] = {}
        for info in self.methods.values():
            for access in info.accesses:
                grouped.setdefault(access.attr, []).append(access)
        return grouped

    def joined_bindings(self) -> set[tuple[str, ...]]:
        joined: set[tuple[str, ...]] = set()
        for info in self.methods.values():
            joined |= info.joins
            joined |= info.daemonized
        return joined


class _MethodWalker:
    """Recursive AST walk of one method body with an explicit guard stack."""

    def __init__(
        self,
        cls_name: str,
        method: MethodConcurrency,
        method_names: frozenset[str],
        lock_attrs: Mapping[str, str],
    ) -> None:
        self.cls_name = cls_name
        self.method = method
        self.method_names = method_names
        self.lock_attrs = lock_attrs
        self.guards: list[str] = []
        self.local_locks: set[str] = set()
        self.local_threads: dict[str, SpawnSite] = {}
        #: loop variable -> binding of the container it iterates (join drains
        #: like ``for t in self._handlers: t.join()`` or over a local list).
        self.loop_aliases: dict[str, tuple[str, ...]] = {}

    # --- entry -----------------------------------------------------------------

    def walk_body(self, body: Iterable[ast.stmt]) -> None:
        # Lock-shaped parameters guard like locals (WorkerServer passes a
        # per-connection send lock down into its dispatch helper).
        args = getattr(self.method.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if _lockish_name(arg.arg):
                    self.local_locks.add(arg.arg)
        for stmt in body:
            self._visit(stmt)

    # --- guard resolution -------------------------------------------------------

    def _guard_name(self, expr: ast.AST) -> str | None:
        attr = _is_self_attr(expr)
        if attr is not None:
            if attr in self.lock_attrs:
                return f"self.{attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.local_locks or _lockish_name(expr.id):
                return expr.id
            return None
        if isinstance(expr, ast.Attribute) and _lockish_name(expr.attr):
            parts = _dotted_parts(expr)
            return ".".join(parts) if parts else expr.attr
        return None

    # --- dispatch ---------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        handler = getattr(self, f"_visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self._visit_children(node)

    def _visit_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_all(self, nodes: Iterable[ast.AST]) -> None:
        for node in nodes:
            self._visit(node)

    # --- statements -------------------------------------------------------------

    def _visit_With(self, node: ast.With) -> None:
        self._handle_with(node)

    def _visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._handle_with(node)

    def _handle_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            guard = self._guard_name(item.context_expr)
            if guard is not None:
                self.method.acquisitions.append(
                    LockAcquisition(
                        lock=guard,
                        node=item.context_expr,
                        held=tuple(self.guards),
                    )
                )
                self.guards.append(guard)
                pushed += 1
            else:
                self._visit(item.context_expr)
        self._visit_all(node.body)
        del self.guards[len(self.guards) - pushed :]

    def _visit_Assign(self, node: ast.Assign) -> None:
        spawn, spawn_call = self._spawn_from_value(node.value)
        for target in node.targets:
            self._classify_store(target, spawn)
        self._visit_spawn_value(node.value, spawn, spawn_call)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            spawn, spawn_call = self._spawn_from_value(node.value)
            self._classify_store(node.target, spawn)
            self._visit_spawn_value(node.value, spawn, spawn_call)
        else:
            self._classify_store(node.target, None)

    def _spawn_from_value(
        self, value: ast.AST
    ) -> tuple[SpawnSite | None, ast.Call | None]:
        """A spawn in an assigned value: a bare call, or a comprehension of
        spawns (``threads = [Thread(...) for ...]`` — the canonical batch
        pattern) whose element call stands for every spawned thread."""
        spawn = self._spawn_from_call(value)
        if spawn is not None:
            return spawn, value  # type: ignore[return-value]
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            spawn = self._spawn_from_call(value.elt)
            if spawn is not None:
                return spawn, value.elt  # type: ignore[return-value]
        return None, None

    def _visit_spawn_value(
        self, value: ast.AST, spawn: SpawnSite | None, spawn_call: ast.Call | None
    ) -> None:
        if spawn is None or spawn_call is None:
            self._visit(value)
            return
        self._visit_spawn_operands(spawn_call, spawn)
        if spawn_call is not value:  # comprehension: scan its generators too
            for gen in value.generators:  # type: ignore[attr-defined]
                self._visit(gen.iter)
                self._visit_all(gen.ifs)

    def _visit_spawn_operands(self, call: ast.Call, spawn: SpawnSite) -> None:
        """Scan a spawn call's operands without treating the handed-off
        callable as an intra-class call edge (the target runs on the NEW
        thread's role, which the spawn itself already records)."""
        if spawn.via == "pool":
            self._visit_all(call.args[1:])
        elif spawn.via == "signal":
            self._visit_all(call.args[:1])
        else:
            self._visit_all(call.args)
        for kw in call.keywords:
            if spawn.via == "thread" and kw.arg == "target":
                continue
            self._visit(kw.value)

    def _classify_store(self, target: ast.AST, spawn: SpawnSite | None) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(element, spawn)
            return
        attr = _is_self_attr(target)
        if attr is not None:
            self._record_access(attr, "rebind", target)
            if spawn is not None:
                spawn.binding = ("attr", attr)
            return
        if isinstance(target, ast.Attribute):
            # ``x.daemon = True`` flips an already-constructed thread.
            if target.attr == "daemon":
                base = target.value
                if isinstance(base, ast.Name) and base.id in self.local_threads:
                    site = self.local_threads[base.id]
                    site.daemon = True
                    if site.binding is not None:
                        self.method.daemonized.add(site.binding)
                base_attr = _is_self_attr(base)
                if base_attr is not None:
                    self.method.daemonized.add(("attr", base_attr))
            self._visit(target.value)
            return
        if isinstance(target, ast.Subscript):
            base_attr = _is_self_attr(target.value)
            if base_attr is not None:
                self._record_access(base_attr, "mutate", target)
            else:
                self._visit(target.value)
            self._visit(target.slice)
            return
        if isinstance(target, ast.Name) and spawn is not None:
            binding = ("local", self.method.name, target.id)
            spawn.binding = binding
            self.local_threads[target.id] = spawn

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        attr = _is_self_attr(target)
        if attr is not None:
            self._record_access(attr, "mutate", target)
        elif isinstance(target, ast.Subscript):
            base_attr = _is_self_attr(target.value)
            if base_attr is not None:
                self._record_access(base_attr, "mutate", target)
            else:
                self._visit(target.value)
            self._visit(target.slice)
        self._visit(node.value)

    def _visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is not None:
                self._record_access(attr, "rebind", target)
                continue
            if isinstance(target, ast.Subscript):
                base_attr = _is_self_attr(target.value)
                if base_attr is not None:
                    self._record_access(base_attr, "mutate", target)
                else:
                    self._visit(target.value)
                self._visit(target.slice)
                continue
            self._visit(target)

    def _visit_For(self, node: ast.For) -> None:
        binding = self._iterated_binding(node.iter)
        self._visit(node.iter)
        alias: str | None = None
        previous: tuple[str, ...] | None = None
        if binding is not None and isinstance(node.target, ast.Name):
            alias = node.target.id
            previous = self.loop_aliases.get(alias)
            self.loop_aliases[alias] = binding
        self._visit_all(node.body)
        self._visit_all(node.orelse)
        if alias is not None:
            if previous is None:
                self.loop_aliases.pop(alias, None)
            else:
                self.loop_aliases[alias] = previous

    def _iterated_binding(self, node: ast.AST) -> tuple[str, ...] | None:
        """The binding a loop iterates: ``self.X``, a local name, or either
        wrapped in ``list(...)``/``sorted(...)``-style snapshots."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple", "sorted", "reversed"}
            and len(node.args) == 1
        ):
            node = node.args[0]
        attr = _is_self_attr(node)
        if attr is not None:
            return ("attr", attr)
        if isinstance(node, ast.Name):
            return ("local", self.method.name, node.id)
        return None

    def _visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested_def(node)

    def _visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested_def(node)

    def _visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested_def(node)

    def _visit_nested_def(self, node: ast.AST) -> None:
        # A nested def's body does not run under the guards held at its
        # *definition* site — reset the stack while walking it. Its
        # accesses still belong to this method's thread roles (callbacks
        # run where the method hands them).
        saved, self.guards = self.guards, []
        body = node.body if isinstance(node.body, list) else [node.body]
        self._visit_all(body)
        self.guards = saved

    def _visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # a nested class builds its own table

    # --- expressions ------------------------------------------------------------

    def _visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _is_self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            if attr in self.method_names:
                # Bound-method or property read: the body runs on the
                # reading thread — a call edge, not a field access.
                self.method.calls.append((attr, tuple(self.guards), node))
            else:
                self._record_access(attr, "read", node)
            return
        self._visit_children(node)

    def _visit_Call(self, node: ast.Call) -> None:
        spawn = self._spawn_from_call(node)
        if spawn is not None:
            self._visit_spawn_operands(node, spawn)
            return

        func = node.func
        name = _terminal_name(func)

        # Intra-class call edge: self.m(...).
        if (
            isinstance(func, ast.Attribute)
            and _is_self_attr(func) is not None
            and func.attr in self.method_names
        ):
            self.method.calls.append((func.attr, tuple(self.guards), node))
            self._visit_all(node.args)
            self._visit_all(kw.value for kw in node.keywords)
            return

        # In-place container mutation through self.X.<mutator>(...).
        if isinstance(func, ast.Attribute):
            base_attr = _is_self_attr(func.value)
            if base_attr is not None:
                kind = "mutate" if name in MUTATOR_METHODS else "read"
                self._record_access(base_attr, kind, func.value)

        # Join bookkeeping (0 positional args keeps str.join out).
        if (
            name == "join"
            and isinstance(func, ast.Attribute)
            and not node.args
        ):
            self._record_join(func.value)

        reason = self._blocking_reason(node, name)
        if reason is not None:
            self.method.blocking.append(
                BlockingCall(node=node, reason=reason, held=tuple(self.guards))
            )

        if not isinstance(func, ast.Attribute) or _is_self_attr(func.value) is None:
            self._visit(func)
        self._visit_all(node.args)
        self._visit_all(kw.value for kw in node.keywords)

    def _record_join(self, receiver: ast.AST) -> None:
        attr = _is_self_attr(receiver)
        if attr is not None:
            self.method.joins.add(("attr", attr))
            return
        if isinstance(receiver, ast.Name):
            aliased = self.loop_aliases.get(receiver.id)
            if aliased is not None:
                self.method.joins.add(aliased)
            self.method.joins.add(("local", self.method.name, receiver.id))

    def _blocking_reason(self, node: ast.Call, name: str | None) -> str | None:
        if name is None:
            return None
        parts = _dotted_parts(node.func)
        if parts and parts[0] == "subprocess":
            return "subprocess"
        if name in _BLOCKING_SIMPLE:
            return _BLOCKING_SIMPLE[name]
        if name == "join" and isinstance(node.func, ast.Attribute) and not node.args:
            return "thread join"
        if name == "result" and isinstance(node.func, ast.Attribute) and not node.args:
            return "future result"
        if name in {"wait", "wait_for"} and isinstance(node.func, ast.Attribute):
            receiver = self._guard_name(node.func.value)
            if receiver is not None and receiver in self.guards:
                # Condition.wait on a held condition *releases* it — the
                # sanctioned parking pattern, not a stall.
                return None
            return "wait"
        return None

    # --- spawn detection --------------------------------------------------------

    def _spawn_from_call(self, node: ast.AST) -> SpawnSite | None:
        if not isinstance(node, ast.Call):
            return None
        name = _terminal_name(node.func)
        parts = _dotted_parts(node.func)

        if name == "Thread" and (parts is None or parts[0] in {"threading", "Thread"}):
            target = None
            daemon = False
            role: str | None = None
            for kw in node.keywords:
                if kw.arg == "target":
                    target = _is_self_attr(kw.value)
                elif kw.arg == "daemon":
                    daemon = (
                        isinstance(kw.value, ast.Constant) and kw.value.value is True
                    )
                elif kw.arg == "name":
                    if isinstance(kw.value, ast.Constant) and isinstance(
                        kw.value.value, str
                    ):
                        role = kw.value.value
            site = SpawnSite(
                node=node,
                via="thread",
                target=target,
                role=role or target or "thread",
                daemon=daemon,
                binding=None,
            )
            self.method.spawns.append(site)
            return site

        if name == "signal" and parts == ["signal", "signal"] and len(node.args) == 2:
            target = _is_self_attr(node.args[1])
            if target is not None:
                site = SpawnSite(
                    node=node,
                    via="signal",
                    target=target,
                    role="signal",
                    daemon=True,  # handlers need no join
                    binding=None,
                )
                self.method.spawns.append(site)
                return site
            return None

        if name == "submit" and isinstance(node.func, ast.Attribute) and node.args:
            target = _is_self_attr(node.args[0])
            if target is not None:
                site = SpawnSite(
                    node=node,
                    via="pool",
                    target=target,
                    role="pool",
                    daemon=True,  # the executor owns the lifecycle
                    binding=None,
                )
                self.method.spawns.append(site)
                return site
            return None

        return None

    # --- recording --------------------------------------------------------------

    def _record_access(self, attr: str, kind: str, node: ast.AST) -> None:
        self.method.accesses.append(
            AttrAccess(
                attr=attr,
                kind=kind,
                method=self.method.name,
                node=node,
                guards=tuple(self.guards),
            )
        )


def _collect_lock_attrs(
    cls_node: ast.ClassDef,
) -> tuple[dict[str, str], set[str]]:
    """Attributes assigned a ``threading`` synchronization factory."""
    lock_attrs: dict[str, str] = {}
    sync_attrs: set[str] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = _terminal_name(node.value.func)
        if factory not in SYNC_FACTORIES:
            continue
        parts = _dotted_parts(node.value.func)
        if parts is not None and len(parts) > 1 and parts[0] not in {
            "threading",
            "multiprocessing",
        }:
            continue
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is None:
                continue
            sync_attrs.add(attr)
            if factory in LOCK_FACTORIES:
                lock_attrs[attr] = factory or ""
    return lock_attrs, sync_attrs


def _is_public_entry(name: str) -> bool:
    """Methods callable from outside the class run on the caller's thread."""
    if name == "__init__":
        return False  # construction happens-before publication
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def build_class_tables(
    module: "ModuleSource", config: "AnalysisConfig"
) -> list[ClassConcurrency]:
    """One :class:`ClassConcurrency` per class definition in ``module``."""
    if module.tree is None:
        return []
    tables = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            tables.append(_build_one(node, module.relpath, config))
    return tables


def _build_one(
    cls_node: ast.ClassDef, relpath: str, config: "AnalysisConfig"
) -> ClassConcurrency:
    lock_attrs, sync_attrs = _collect_lock_attrs(cls_node)
    method_nodes = [
        stmt
        for stmt in cls_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    method_names = frozenset(stmt.name for stmt in method_nodes)

    table = ClassConcurrency(
        name=cls_node.name,
        node=cls_node,
        relpath=relpath,
        lock_attrs=lock_attrs,
        sync_attrs=sync_attrs,
    )
    for stmt in method_nodes:
        info = MethodConcurrency(name=stmt.name, node=stmt)
        walker = _MethodWalker(cls_node.name, info, method_names, lock_attrs)
        walker.walk_body(stmt.body)
        table.methods[stmt.name] = info

    _assign_roles(table, relpath, config)
    return table


def _assign_roles(
    table: ClassConcurrency, relpath: str, config: "AnalysisConfig"
) -> None:
    # Seeds: public surface, spawn targets, and centrally declared roles.
    for name, info in table.methods.items():
        if _is_public_entry(name):
            info.roles.add(MAIN_ROLE)
    for info in table.methods.values():
        for spawn in info.spawns:
            if spawn.target is not None and spawn.target in table.methods:
                table.methods[spawn.target].roles.add(spawn.role)
    declared = config.declared_roles(relpath, table.name)
    for method, role in declared.items():
        if method in table.methods:
            table.methods[method].roles.add(role)

    # Propagate caller roles through intra-class call edges to a fixpoint
    # (a helper called from a handler thread runs on the handler thread).
    changed = True
    while changed:
        changed = False
        for info in table.methods.values():
            if info.name == "__init__":
                continue
            for callee, _held, _node in info.calls:
                target = table.methods.get(callee)
                if target is None or target.name == "__init__":
                    continue
                missing = info.roles - target.roles
                if missing:
                    target.roles |= missing
                    changed = True

"""The repo-specific rules: RB101..RB104.

Each rule encodes one defect class that has actually produced (or
narrowly missed producing) a cross-backend determinism break in this
repo — the history and the reasoning live in ``docs/ANALYSIS.md``; the
code here is deliberately heuristic AST matching, tuned to this
codebase's idioms, with inline ``# repro: ignore[...]`` as the escape
hatch for the false positives any such heuristic has.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.framework import (
    AnalysisConfig,
    ModuleSource,
    Rule,
    register_rule,
)

__all__ = [
    "UnorderedFoldRule",
    "SeedDisciplineRule",
    "PickleSafetyRule",
    "ProtocolHygieneRule",
]


def _terminal_name(func: ast.expr) -> str | None:
    """The rightmost identifier of a call target (``a.b.c`` -> ``"c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted_parts(node: ast.expr) -> list[str] | None:
    """``np.random.seed`` -> ``["np", "random", "seed"]`` (None if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


# --- RB101: unordered iteration in a fold ------------------------------------------


_SET_ANNOTATION_NAMES = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
}

#: Folds where iteration order reaches the result. ``sum`` additionally
#: covers ``.values()`` (float accumulation is order-sensitive even over
#: a deterministically-ordered dict once the dict's *insertion* order is
#: itself backend-dependent); ``min``/``max``/``join``/``list``/``tuple``
#: only fire on genuinely unordered set-like iterables.
_SUM_FOLDS = {"sum"}
_ORDER_SENSITIVE_FOLDS = {"min", "max", "list", "tuple"}


class _SetKnowledge:
    """Names and attributes a module binds to set-like values."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()
        self.attrs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    self._bind(target)
            elif isinstance(node, ast.AnnAssign):
                set_typed = _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_expr(node.value)
                )
                if set_typed:
                    self._bind(node.target)

    def _bind(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
            # Class-body annotations (dataclass fields) surface later as
            # instance attributes of the same name.
            self.attrs.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) in {"set", "frozenset"}
    return False


def _is_set_annotation(annotation: ast.expr) -> bool:
    root = annotation
    if isinstance(root, ast.Subscript):
        root = root.value
    name = _terminal_name(root) if isinstance(root, (ast.Name, ast.Attribute)) else None
    return name in _SET_ANNOTATION_NAMES


def _unordered_kind(node: ast.expr, knowledge: _SetKnowledge) -> str | None:
    """``"set"``, ``"dict-values"``, or None for an iterable expression."""
    if _is_set_expr(node):
        return "set"
    if isinstance(node, ast.Name) and node.id in knowledge.names:
        return "set"
    if isinstance(node, ast.Attribute) and node.attr in knowledge.attrs:
        return "set"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
    ):
        return "dict-values"
    return None


def _fold_iterable(arg: ast.expr) -> ast.expr:
    """The expression actually iterated by a fold argument.

    ``sum(f.cost for f in xs)`` folds over ``xs``; a comprehension's
    order is its source iterable's order.
    """
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)) and arg.generators:
        return arg.generators[0].iter
    return arg


@register_rule
class UnorderedFoldRule(Rule):
    """RB101 — folding over an unordered iterable.

    The PR 4 bug class: ``NamespaceSet.creation_cost`` summed floats over
    a ``frozenset``, whose iteration order is not stable across a pickle
    boundary under hash randomization — serial and remote results
    differed in the last ulp. Any ``sum``/``min``/``max``/``list``/
    ``tuple``/``str.join`` (or an accumulating ``for`` loop) over a
    ``set``/``frozenset`` — or a ``sum`` over ``dict.values()`` — must
    iterate a deterministic ordering: wrap the iterable in ``sorted()``.
    """

    code = "RB101"
    name = "unordered-iteration-in-fold"

    def check_module(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        assert module.tree is not None
        knowledge = _SetKnowledge(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, knowledge)
            elif isinstance(node, ast.For):
                yield from self._check_loop(module, node, knowledge)

    def _check_call(
        self, module: ModuleSource, node: ast.Call, knowledge: _SetKnowledge
    ) -> Iterator[Finding]:
        name = _terminal_name(node.func)
        if name in _SUM_FOLDS | _ORDER_SENSITIVE_FOLDS and node.args:
            kind = _unordered_kind(_fold_iterable(node.args[0]), knowledge)
            if kind == "dict-values" and name not in _SUM_FOLDS:
                return  # min/max/list of scalar dict values: insertion-ordered
            if kind is not None:
                yield module.finding(
                    node,
                    self.code,
                    f"{name}() folds over a {kind} iterable whose order is "
                    f"not stable across processes; wrap it in sorted(...)",
                )
        elif (
            name == "join"
            and isinstance(node.func, ast.Attribute)
            and node.args
            and _unordered_kind(_fold_iterable(node.args[0]), knowledge) == "set"
        ):
            yield module.finding(
                node,
                self.code,
                "str.join over a set iterates in hash order; "
                "join a sorted(...) sequence instead",
            )

    def _check_loop(
        self, module: ModuleSource, node: ast.For, knowledge: _SetKnowledge
    ) -> Iterator[Finding]:
        if _unordered_kind(node.iter, knowledge) != "set":
            return
        for inner in ast.walk(node):
            accumulates = isinstance(inner, ast.AugAssign) or (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in {"append", "extend", "add_row", "write"}
            )
            if accumulates:
                yield module.finding(
                    node,
                    self.code,
                    "loop accumulates over a set iterable whose order is not "
                    "stable across processes; iterate sorted(...) instead",
                )
                return


# --- RB102: seed discipline --------------------------------------------------------


_CLOCK_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "clock_gettime",
}
_UUID_FNS = {"uuid1", "uuid4"}
#: ``np.random.<capitalized>`` are explicit-seed constructors (PCG64,
#: Generator, SeedSequence) — the seed tree's own building blocks.
_NUMPY_GLOBAL_STATE = {"default_rng", "seed", "get_state", "set_state"}


class _ImportMap:
    """How a module spells the entropy- and clock-bearing modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: dict[str, str] = {}  # local alias -> real module
        self.from_names: dict[str, tuple[str, str]] = {}  # local -> (module, name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.module_aliases[item.asname or item.name.split(".")[0]] = (
                        item.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    self.from_names[item.asname or item.name] = (
                        node.module, item.name
                    )


@register_rule
class SeedDisciplineRule(Rule):
    """RB102 — randomness or clock reads outside the seed tree.

    All model randomness must flow from :mod:`repro.rng`'s seed tree;
    all timing belongs in the allowlisted infra seams (the scheduler's
    provenance spans, the perf harness, the store's recency stamps).
    A ``random.random()`` or ``time.time()`` anywhere else silently
    forks results between two runs of the same seed — the exact failure
    the bit-identity gates exist to prevent, caught here for free.
    """

    code = "RB102"
    name = "seed-discipline"

    def check_module(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        assert module.tree is not None
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = self._classify(node, imports)
                if message is not None:
                    yield module.finding(node, self.code, message)

    def _classify(self, node: ast.Call, imports: _ImportMap) -> str | None:
        parts = _dotted_parts(node.func)
        if parts is None:
            return None
        # Resolve a bare imported name (``from time import perf_counter``).
        if len(parts) == 1 and parts[0] in imports.from_names:
            module_name, real = imports.from_names[parts[0]]
            parts = module_name.split(".") + [real]
        elif parts[0] in imports.module_aliases:
            parts = imports.module_aliases[parts[0]].split(".") + parts[1:]
        else:
            return None
        root, leaf = parts[0], parts[-1]
        if root == "random":
            return (
                f"stdlib random.{leaf}() bypasses the seed tree; derive an "
                f"RngStream from repro.rng instead"
            )
        if root == "numpy" and len(parts) >= 3 and parts[1] == "random":
            if leaf in _NUMPY_GLOBAL_STATE or leaf.islower():
                return (
                    f"numpy.random.{leaf}() draws outside the seed tree; "
                    f"route the draw through an RngStream child"
                )
            return None
        if root == "time" and leaf in _CLOCK_FNS:
            return (
                f"time.{leaf}() read in model/workload code; clocks are "
                f"nondeterministic — derive variation from the seed tree, or "
                f"move the timing into an allowlisted infra seam"
            )
        if root == "os" and leaf == "urandom":
            return "os.urandom() is raw entropy; all randomness must flow from the seed tree"
        if root == "uuid" and leaf in _UUID_FNS:
            return f"uuid.{leaf}() embeds clock/host entropy; derive ids from the seed tree"
        if root == "secrets":
            return f"secrets.{leaf}() is raw entropy; all randomness must flow from the seed tree"
        return None


# --- RB103: pickle safety at dispatch seams ----------------------------------------


#: Attribute calls that ship their callable across a process or socket
#: boundary (``executor.submit``, ``pool.map`` and friends).
_SINK_ATTRS = {
    "submit", "map", "map_async", "imap", "imap_unordered", "starmap",
    "apply_async",
}
#: Bare/terminal callee names that are dispatch seams in this codebase.
_SINK_NAMES = {"send_frame", "mapper"}


def _is_sink(func: ast.expr) -> bool:
    if isinstance(func, ast.Attribute):
        return (
            func.attr in _SINK_ATTRS
            or func.attr in _SINK_NAMES
            or func.attr.endswith("_map")
            or func.attr.endswith("_mapper")
        )
    if isinstance(func, ast.Name):
        # The builtin ``map`` stays in-process; only the repo's seam
        # spellings count as bare names.
        return (
            func.id in _SINK_NAMES
            or func.id.endswith("_map")
            or func.id.endswith("_mapper")
        )
    return False


@register_rule
class PickleSafetyRule(Rule):
    """RB103 — closures escaping into pickled dispatch seams.

    The PR 2 bug class: a lambda (or a function defined inside another
    function) handed to a pool mapper works on the serial and thread
    backends and then explodes — or worse, silently degrades — the
    moment policy swaps in the process or remote backend, because
    closures cannot cross a pickle boundary. Dispatch units must be
    module-level functions and picklable dataclasses
    (:class:`~repro.core.runner.RepJob` / ``run_rep_job``).
    """

    code = "RB103"
    name = "pickle-safety"

    def check_module(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        assert module.tree is not None
        yield from self._walk_scope(module, module.tree, frozenset())

    def _walk_scope(
        self,
        module: ModuleSource,
        scope: ast.AST,
        local_functions: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = local_functions | _local_callable_names(node)
                yield from self._walk_scope(module, node, inner)
            elif isinstance(node, ast.ClassDef):
                yield from self._walk_scope(module, node, local_functions)
            else:
                for call in ast.walk(node):
                    if isinstance(call, ast.Call) and _is_sink(call.func):
                        yield from self._check_sink(module, call, local_functions)

    def _check_sink(
        self,
        module: ModuleSource,
        call: ast.Call,
        local_functions: frozenset[str],
    ) -> Iterator[Finding]:
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        flattened: list[ast.expr] = []
        for argument in arguments:
            if isinstance(argument, ast.Tuple):
                flattened.extend(argument.elts)  # ("job", seq, fn, item) frames
            else:
                flattened.append(argument)
        sink = _terminal_name(call.func) or "dispatch seam"
        for argument in flattened:
            if isinstance(argument, ast.Lambda):
                yield module.finding(
                    argument,
                    self.code,
                    f"lambda passed to {sink}() cannot cross a pickle "
                    f"boundary; use a module-level function",
                )
            elif (
                isinstance(argument, ast.Name)
                and argument.id in local_functions
            ):
                yield module.finding(
                    argument,
                    self.code,
                    f"locally-defined function {argument.id!r} passed to "
                    f"{sink}() closes over its enclosing frame and cannot "
                    f"pickle; hoist it to module level",
                )


def _local_callable_names(function: ast.AST) -> frozenset[str]:
    """Names of functions/lambdas defined directly inside ``function``."""
    names = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


# --- RB104: protocol-frame hygiene -------------------------------------------------


def _frame_tag(node: ast.expr) -> str | None:
    """The tag of a frame-shaped tuple literal (``("job", ...)``)."""
    if (
        isinstance(node, ast.Tuple)
        and node.elts
        and isinstance(node.elts[0], ast.Constant)
        and isinstance(node.elts[0].value, str)
    ):
        tag = node.elts[0].value
        if tag and all(ch.islower() or ch == "_" for ch in tag):
            return tag
    return None


class _ProtocolModule:
    """One module's contribution to its protocol group."""

    def __init__(self, module: ModuleSource) -> None:
        assert module.tree is not None
        self.module = module
        self.functions: dict[str, ast.AST] = {}
        self.sent: dict[str, ast.AST] = {}  # tag -> representative node
        self.handled: set[str] = set()
        self.version_names: dict[str, ast.AST] = {}
        self.inline_versions: list[ast.AST] = []
        self.uses_framing = False
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, node)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, ast.Compare):
                self._visit_compare(node)
            elif isinstance(node, ast.Dict):
                self._visit_dict(node)

    # --- sent tags ------------------------------------------------------------

    def _visit_call(self, call: ast.Call) -> None:
        name = _terminal_name(call.func)
        if name in {"send_frame", "recv_frame"}:
            self.uses_framing = True
        if name != "send_frame" or not call.args:
            return
        message = call.args[1] if len(call.args) >= 2 else call.args[0]
        self._resolve_message(message, depth=0)

    def _resolve_message(self, node: ast.expr, depth: int) -> None:
        if depth > 3:
            return
        tag = _frame_tag(node)
        if tag is not None:
            self.sent.setdefault(tag, node)
            return
        if isinstance(node, ast.Call):
            callee = _terminal_name(node.func)
            if callee in self.functions:
                self._resolve_returns(self.functions[callee], depth + 1)
        elif isinstance(node, ast.Name):
            self._resolve_name(node.id, depth + 1)

    def _resolve_name(self, name: str, depth: int) -> None:
        """Frames reaching ``send_frame`` through a variable or parameter.

        A variable: collect its tuple assignments module-wide. A
        forwarder parameter (``def deliver(reply): send_frame(_, reply)``):
        collect the argument at every call site of the forwarder. Both
        over-approximate scope, which errs toward *more* sent tags — and a
        false "sent" tag is still a real string the handler set should
        know about.
        """
        assert self.module.tree is not None
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        self._resolve_message(node.value, depth)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = [a.arg for a in node.args.args]
                if name not in params:
                    continue
                index = params.index(name)
                if not _function_sends(node, name):
                    continue
                for site in ast.walk(self.module.tree):
                    if (
                        isinstance(site, ast.Call)
                        and _terminal_name(site.func) == node.name
                        and index - (1 if params and params[0] == "self" else 0)
                        < len(site.args)
                    ):
                        offset = 1 if params and params[0] == "self" else 0
                        self._resolve_message(site.args[index - offset], depth)

    def _resolve_returns(self, function: ast.AST, depth: int) -> None:
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                self._resolve_message(node.value, depth)

    # --- handled tags and versions ---------------------------------------------

    def _visit_compare(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for op in node.ops):
            return
        for expr in [node.left, *node.comparators]:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                self.handled.add(expr.value)
            elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
                for element in expr.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        self.handled.add(element.value)
        # ``hello[1].get("protocol") != PROTOCOL_VERSION`` — both sides.
        version_get = any(
            _is_protocol_get(expr) for expr in [node.left, *node.comparators]
        )
        if version_get:
            for expr in [node.left, *node.comparators]:
                name = _constant_name(expr)
                if name is not None:
                    self.version_names.setdefault(name, expr)

    def _visit_dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "protocol"
            ):
                name = _constant_name(value)
                if name is not None:
                    self.version_names.setdefault(name, value)
                elif isinstance(value, ast.Constant):
                    self.inline_versions.append(value)


def _is_protocol_get(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "protocol"
    )


def _constant_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _function_sends(function: ast.AST, param: str) -> bool:
    """Does ``function`` pass ``param`` to ``send_frame``?"""
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and _terminal_name(node.func) == "send_frame":
            for argument in node.args:
                if isinstance(argument, ast.Name) and argument.id == param:
                    return True
    return False


@register_rule
class ProtocolHygieneRule(Rule):
    """RB104 — every sent frame tag needs a handler; versions must be named.

    The worker and store protocols are framed pickles with a string tag
    as the first tuple element. A tag sent by one end and matched by no
    handler arm on the other surfaces at runtime as an "unexpected
    frame" teardown — in the middle of a fleet run. Likewise the hello
    version must be a single named constant per protocol, used by both
    the client's hello and the server's validation, so the two ends
    cannot drift apart silently.
    """

    code = "RB104"
    name = "protocol-frame-hygiene"
    cross = True

    def check_project(
        self, modules: Sequence[ModuleSource], config: AnalysisConfig
    ) -> Iterator[Finding]:
        groups: dict[str, list[_ProtocolModule]] = {}
        for module in modules:
            if module.tree is None:
                continue
            info = _ProtocolModule(module)
            has_protocol_state = (
                info.sent or info.handled or info.version_names or info.inline_versions
            )
            if info.uses_framing and has_protocol_state:
                groups.setdefault(
                    config.protocol_group(module.relpath), []
                ).append(info)
        for members in groups.values():
            yield from self._check_group(members)

    def _check_group(self, members: list[_ProtocolModule]) -> Iterator[Finding]:
        handled: set[str] = set()
        for member in members:
            handled |= member.handled
        for member in members:
            for tag in sorted(member.sent):
                if tag not in handled:
                    yield member.module.finding(
                        member.sent[tag],
                        self.code,
                        f"frame tag {tag!r} is sent but matched by no "
                        f"handler arm in its protocol group",
                    )
        names: dict[str, tuple[_ProtocolModule, ast.AST]] = {}
        for member in members:
            for name, node in member.version_names.items():
                names.setdefault(name, (member, node))
            for node in member.inline_versions:
                yield member.module.finding(
                    node,
                    self.code,
                    "protocol version is an inline literal; name it as a "
                    "module constant shared by both endpoints",
                )
        if len(names) > 1:
            spelled = ", ".join(sorted(names))
            for member, node in names.values():
                yield member.module.finding(
                    node,
                    self.code,
                    f"protocol group uses {len(names)} distinct version "
                    f"constants ({spelled}); both endpoints must share one",
                )

"""Sysbench CPU prime verification — the Finding 1 control experiment.

A single-threaded loop testing numbers for primality by trial division:
pure scalar integer arithmetic exercising "a basic subset of all available
CPU instructions". The paper uses it to show the CPU overhead seen under
ffmpeg is *not* inherent to any platform — and indeed every platform,
including OSv, performs equivalently here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.workloads.base import Workload

__all__ = ["SysbenchCpuWorkload", "SysbenchCpuResult"]


@dataclass(frozen=True)
class SysbenchCpuResult:
    """One sysbench cpu run."""

    platform: str
    events_per_second: float
    total_time_s: float
    max_prime: int


def _trial_division_ops(max_prime: int) -> float:
    """Scalar operations for one sysbench 'event' (verify 3..max_prime).

    Sysbench divides each candidate c by 2..sqrt(c); the dominant term is
    sum over c of sqrt(c) ~ (2/3) * N * sqrt(N), a few ops per division.
    """
    n = float(max_prime)
    divisions = (2.0 / 3.0) * n * math.sqrt(n)
    return divisions * 4.0  # div + compare + increments


class SysbenchCpuWorkload(Workload):
    """``sysbench cpu --cpu-max-prime=10000`` style run, one thread."""

    name = "sysbench-cpu"

    def __init__(self, max_prime: int = 10_000, events: int = 10_000) -> None:
        if max_prime < 3:
            raise ConfigurationError("max_prime must be >= 3")
        if events < 1:
            raise ConfigurationError("events must be >= 1")
        self.max_prime = max_prime
        self.events = events

    def run(self, platform: Platform, rng: RngStream) -> SysbenchCpuResult:
        profile = platform.cpu_profile()
        cpu = platform.machine.cpu
        ops_per_event = _trial_division_ops(self.max_prime)
        # Single thread, scalar-only: identical native execution everywhere;
        # only the (tiny) scalar overhead factor and noise can differ.
        rate = cpu.scalar_ops_per_second(1) / profile.scalar_overhead_factor
        total_time = self.events * ops_per_event / rate
        total_time *= rng.gaussian_factor(0.008)
        return SysbenchCpuResult(
            platform=platform.name,
            events_per_second=self.events / total_time,
            total_time_s=total_time,
            max_prime=self.max_prime,
        )

"""YCSB workload specifications (Cooper et al., SoCC'10).

The paper uses *workload A* — 50/50 reads and updates over a zipfian key
distribution, "behavior exhibited by e.g. a session store recording recent
actions" — against memcached (Section 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["YcsbWorkloadSpec", "WORKLOAD_A", "WORKLOAD_B", "WORKLOAD_C"]


@dataclass(frozen=True)
class YcsbWorkloadSpec:
    """One YCSB core workload."""

    name: str
    read_proportion: float
    update_proportion: float
    record_count: int = 1_000_000
    value_bytes: int = 1_000  # 10 fields x 100 bytes
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError("read + update proportions must sum to 1")
        if self.record_count < 1:
            raise ConfigurationError("record count must be >= 1")

    def is_update(self, draw: float) -> bool:
        """Classify one operation from a uniform draw in [0, 1)."""
        if not 0.0 <= draw < 1.0:
            raise ConfigurationError("draw must be in [0, 1)")
        return draw < self.update_proportion


WORKLOAD_A = YcsbWorkloadSpec("workload-a", read_proportion=0.5, update_proportion=0.5)
WORKLOAD_B = YcsbWorkloadSpec("workload-b", read_proportion=0.95, update_proportion=0.05)
WORKLOAD_C = YcsbWorkloadSpec("workload-c", read_proportion=1.0, update_proportion=0.0)

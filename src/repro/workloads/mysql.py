"""MySQL under sysbench ``oltp_read_write`` — Figure 17.

Sysbench preloads 1 M records into 3 tables and then runs transactions of
SELECT/UPDATE/DELETE/INSERT queries at increasing client thread counts
(10..160). The benchmark stresses memory (buffer pool pointer chasing),
the filesystem (redo log), and networking (client/server round trips).

The throughput model composes, per platform:

* **per-transaction service time** — CPU/memory work scaled by the square
  of the memory-latency factor (B-tree descent is dependent pointer
  chasing), the syscall-interception factor, and per-query network round
  trips plus redo-log I/O;
* **capacity** — available vCPUs x scheduler efficiency over the service
  time, times the platform's OLTP capacity factor (Finding 22);
* **thread-count shape** — a saturating ramp with lock-contention decay
  beyond the platform's contention knee. The knee scales with available
  CPUs: guests (16 vCPUs) peak near 50 threads, native (128 threads, two
  NUMA domains and a higher per-transaction cost) peaks near 110 without
  delivering significantly more throughput (Finding 20);
* platforms with **custom thread runtimes** (OSv, gVisor) follow a flat
  saturating curve instead — thread count has almost no effect
  (Finding 21).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import ms, us
from repro.workloads.base import Workload

__all__ = ["MysqlOltpWorkload", "MysqlOltpResult", "DEFAULT_THREAD_SWEEP"]

#: Per-transaction CPU/memory time on one guest core (all queries).
_BASE_TXN_CPU_S = ms(2.9)

#: Queries per oltp_read_write transaction crossing the network.
_QUERIES_PER_TXN = 18

#: sysbench client-side work per query (generation, parsing, bookkeeping);
#: paid in the response time but not on the server's CPUs.
_CLIENT_PER_QUERY_S = us(200.0)

#: Redo-log writes per transaction (group commit amortized).
_LOG_WRITES_PER_TXN = 2

#: Native runs span both sockets: NUMA-remote locks inflate per-txn cost.
_NATIVE_NUMA_FACTOR = 1.9

#: Group-commit/log-serialization ceiling of the database itself.
_DB_CEILING_TPS = 5_600.0

#: Lock-contention decay strength beyond the knee.
_LOCK_DECAY = 0.2

#: Figure 17 sweeps 10..160 client threads.
DEFAULT_THREAD_SWEEP = (10, 20, 30, 40, 50, 70, 90, 110, 130, 160)


@dataclass(frozen=True)
class MysqlOltpResult:
    """Transactions/second at each thread count."""

    platform: str
    thread_counts: tuple[int, ...]
    tps: tuple[float, ...]

    def peak(self) -> tuple[int, float]:
        """(thread count, tps) at the maximum."""
        best = max(range(len(self.tps)), key=lambda i: self.tps[i])
        return self.thread_counts[best], self.tps[best]


def _fallback_io_latency(platform: Platform) -> float:
    """Rootfs write latency for platforms excluded from the fio figures."""
    try:
        return platform.io_profile().per_request_latency_s
    except Exception:  # UnsupportedOperationError: FC / OSv rootfs paths
        return us(20.0)


class MysqlOltpWorkload(Workload):
    """sysbench oltp_read_write over a thread sweep."""

    name = "mysql-oltp"

    def __init__(self, thread_counts: tuple[int, ...] = DEFAULT_THREAD_SWEEP) -> None:
        if not thread_counts or min(thread_counts) < 1:
            raise ConfigurationError("thread counts must be positive")
        self.thread_counts = tuple(thread_counts)

    # --- model pieces -----------------------------------------------------------

    def _txn_service_time(self, platform: Platform) -> float:
        memory = platform.memory_profile()
        service = _BASE_TXN_CPU_S
        service *= memory.dram_latency_factor ** 2  # dependent pointer chasing
        service *= platform.syscall_overhead_factor()
        if platform.name == "native":
            service *= _NATIVE_NUMA_FACTOR
        return service

    def _txn_response_extra(self, platform: Platform) -> float:
        net = platform.net_profile()
        rtt = platform.machine.nic.base_rtt_s + 2.0 * net.added_latency()
        io_latency = _fallback_io_latency(platform)
        return (
            _QUERIES_PER_TXN * (rtt + _CLIENT_PER_QUERY_S)
            + _LOG_WRITES_PER_TXN * io_latency
        )

    def _capacity(self, platform: Platform, threads: int) -> float:
        profile = platform.cpu_profile()
        service = self._txn_service_time(platform)
        speedup = profile.scheduler.parallel_speedup(
            max(threads, 1), profile.vcpus
        )
        capacity = speedup / service
        capacity *= platform.oltp_capacity_factor()
        return min(capacity, _DB_CEILING_TPS)

    def _is_flat_runtime(self, platform: Platform) -> bool:
        """Custom thread runtimes show no thread-count response (Finding 21)."""
        return platform.cpu_profile().scheduler.name != "cfs"

    def tps_at(self, platform: Platform, threads: int) -> float:
        """Deterministic model value at one thread count."""
        service = self._txn_service_time(platform)
        extra = self._txn_response_extra(platform)
        response = service + extra

        profile = platform.cpu_profile()
        if self._is_flat_runtime(platform):
            # The custom runtime multiplexes client threads itself: capacity
            # pins at the vCPU count and thread count has almost no effect.
            saturated = self._capacity(platform, profile.vcpus)
            return saturated * (1.0 - 2.718281828 ** (-threads / 12.0))

        capacity = self._capacity(platform, threads)
        ramp = min(threads / response, capacity)

        knee = min(110.0, 3.1 * profile.vcpus)
        over = max(0.0, threads - knee) / knee
        decay = 1.0 / (1.0 + _LOCK_DECAY * over * over)
        return ramp * decay

    # --- execution ---------------------------------------------------------------

    def run(self, platform: Platform, rng: RngStream) -> MysqlOltpResult:
        tps_values: list[float] = []
        for threads in self.thread_counts:
            value = self.tps_at(platform, threads)
            # Finding 23: wide error bands that never narrowed.
            value *= rng.child(f"threads-{threads}").gaussian_factor(0.06)
            tps_values.append(value)
        return MysqlOltpResult(
            platform=platform.name,
            thread_counts=self.thread_counts,
            tps=tuple(tps_values),
        )

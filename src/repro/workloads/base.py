"""Workload base classes."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.platforms.base import Platform
from repro.rng import RngStream

__all__ = ["Workload", "WorkloadResult"]


@dataclass(frozen=True)
class WorkloadResult:
    """Generic result wrapper: named metrics plus free-form metadata."""

    workload: str
    platform: str
    metrics: dict[str, float]
    metadata: dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Fetch one metric by name."""
        return self.metrics[name]


class Workload(abc.ABC):
    """Base class for all benchmark workloads.

    Subclasses implement :meth:`run`, which draws any run-to-run variation
    from the supplied :class:`~repro.rng.RngStream` so that repetitions and
    error bars are reproducible.
    """

    #: Registry key and figure label.
    name: str = "workload"

    def check_supported(self, platform: Platform) -> None:
        """Raise :class:`UnsupportedOperationError` when the platform
        cannot run this workload (overridden where the paper excludes
        platforms)."""

    @abc.abstractmethod
    def run(self, platform: Platform, rng: RngStream) -> Any:
        """Execute one repetition and return the workload's result type."""

"""Memcached under YCSB — Figure 16.

Memcached holds small values entirely in memory; under YCSB workload-a the
benchmark stresses the network and memory subsystems (Section 3.6). The
model runs a closed-loop client/server simulation on the discrete-event
engine:

* ``clients`` YCSB threads each loop: think -> request over the platform's
  network round trip -> service at the memcached worker pool -> response;
* worker service time scales with the platform's memory-latency factor and
  syscall-interception factor;
* the platform's small-packet rate ceiling (virtqueue/agent crossings)
  throttles the guest/host boundary — the mechanism behind Kata's
  surprisingly low score (Finding 18).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.simcore.engine import Simulator, Timeout
from repro.simcore.resources import Resource
from repro.units import us
from repro.workloads.base import Workload
from repro.workloads.ycsb import WORKLOAD_A, YcsbWorkloadSpec

__all__ = ["MemcachedYcsbWorkload", "MemcachedResult"]

#: Memcached per-operation service time on one native core (hash lookup,
#: slab access, response serialization).
_BASE_SERVICE_S = us(10.0)

#: Updates touch the slab allocator and LRU bookkeeping.
_UPDATE_SERVICE_FACTOR = 1.25

#: YCSB client-side record selection/serialization per op.
_CLIENT_THINK_S = us(100.0)


@dataclass(frozen=True)
class MemcachedResult:
    """One YCSB run against memcached."""

    platform: str
    throughput_ops_per_s: float
    mean_latency_s: float
    operations: int
    workload: str


class MemcachedYcsbWorkload(Workload):
    """YCSB workload-a against memcached (closed loop)."""

    name = "memcached-ycsb"

    def __init__(
        self,
        spec: YcsbWorkloadSpec = WORKLOAD_A,
        clients: int = 48,
        ops_per_client: int = 120,
        server_threads: int = 8,
    ) -> None:
        if clients < 1 or ops_per_client < 1 or server_threads < 1:
            raise ConfigurationError("clients, ops and threads must be >= 1")
        self.spec = spec
        self.clients = clients
        self.ops_per_client = ops_per_client
        self.server_threads = server_threads

    # --- per-platform coefficients --------------------------------------------

    def _round_trip(self, platform: Platform) -> float:
        profile = platform.net_profile()
        return platform.machine.nic.base_rtt_s + 2.0 * profile.added_latency()

    def _service_time(self, platform: Platform, *, update: bool) -> float:
        memory = platform.memory_profile()
        service = _BASE_SERVICE_S
        service *= memory.dram_latency_factor
        service *= platform.syscall_overhead_factor()
        if update:
            service *= _UPDATE_SERVICE_FACTOR
        return service

    # --- simulation -------------------------------------------------------------

    def run(self, platform: Platform, rng: RngStream) -> MemcachedResult:
        simulator = Simulator()
        workers = Resource(simulator, self.server_threads, "memcached-workers")
        round_trip = self._round_trip(platform)
        latencies: list[float] = []

        def client(index: int):
            client_rng = rng.child(f"client-{index}")
            for op in range(self.ops_per_client):
                yield Timeout(_CLIENT_THINK_S * client_rng.lognormal_factor(0.2))
                started = simulator.now
                # Request travels to the guest...
                yield Timeout(round_trip / 2.0 * client_rng.lognormal_factor(0.1))
                yield from workers.acquire()
                try:
                    update = self.spec.is_update(client_rng.uniform())
                    service = self._service_time(platform, update=update)
                    yield Timeout(service * client_rng.lognormal_factor(0.15))
                finally:
                    workers.release()
                # ...and the response travels back.
                yield Timeout(round_trip / 2.0 * client_rng.lognormal_factor(0.1))
                latencies.append(simulator.now - started)
            return None

        processes = [
            simulator.spawn(client(index), name=f"ycsb-{index}")
            for index in range(self.clients)
        ]
        simulator.run()
        if not all(process.finished for process in processes):
            raise ConfigurationError("memcached simulation deadlocked")

        operations = self.clients * self.ops_per_client
        throughput = operations / simulator.now

        # Guest/host boundary ceiling: one request + one response packet per op.
        ceiling = platform.packet_rate_capacity()
        if ceiling is not None:
            throughput = min(throughput, ceiling / 2.0)
        throughput *= rng.child("run-noise").gaussian_factor(0.03)

        return MemcachedResult(
            platform=platform.name,
            throughput_ops_per_s=throughput,
            mean_latency_s=sum(latencies) / len(latencies),
            operations=operations,
            workload=self.spec.name,
        )

"""ffmpeg video re-encode — the Figure 5 CPU macro-benchmark.

Re-encodes a 1080p 30 MB clip from H.264 to H.265 with the ``slower``
preset, 16 threads on 16 guest CPUs. x265's motion search and transforms
are overwhelmingly SIMD; the work is embarrassingly parallel per
frame-row, so the outcome is set by raw SIMD throughput, the platform's
thread-scheduling efficiency, and any SIMD state-handling overhead —
which is how OSv becomes the outlier (Finding 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import seconds_to_ms
from repro.workloads.base import Workload

__all__ = ["FfmpegEncodeWorkload", "FfmpegResult"]

#: Total 64-bit SIMD lane-operations for the full re-encode at preset
#: 'slower'. Calibrated so the testbed finishes in ~65 s on 16 cores.
_TOTAL_SIMD_LANE_OPS = 1.19e13

#: Scalar bookkeeping (bitstream parsing, rate control) per encode.
_TOTAL_SCALAR_OPS = 2.1e11

#: The 'slower' preset trades CPU for compression; other presets scale the
#: operation count (exposed for the ablation experiments).
PRESET_WORK_FACTOR = {
    "ultrafast": 0.06,
    "fast": 0.30,
    "medium": 0.55,
    "slow": 0.80,
    "slower": 1.00,
    "veryslow": 1.65,
}


@dataclass(frozen=True)
class FfmpegResult:
    """One re-encode run."""

    platform: str
    encode_time_s: float
    threads: int
    preset: str

    @property
    def encode_time_ms(self) -> float:
        """Figure 5's y-axis."""
        return seconds_to_ms(self.encode_time_s)


class FfmpegEncodeWorkload(Workload):
    """H.264 -> H.265 re-encode, 16 threads (Section 3.1)."""

    name = "ffmpeg"

    def __init__(self, threads: int = 16, preset: str = "slower") -> None:
        if preset not in PRESET_WORK_FACTOR:
            raise ConfigurationError(f"unknown ffmpeg preset: {preset!r}")
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        self.threads = threads
        self.preset = preset

    def run(self, platform: Platform, rng: RngStream) -> FfmpegResult:
        profile = platform.cpu_profile()
        cpu = platform.machine.cpu
        threads = min(self.threads, profile.vcpus)
        work = PRESET_WORK_FACTOR[self.preset]

        speedup = profile.scheduler.parallel_speedup(threads, profile.vcpus)
        simd_rate = cpu.simd_ops_per_second(1) * speedup / profile.simd_overhead_factor
        scalar_rate = cpu.scalar_ops_per_second(1) * speedup / profile.scalar_overhead_factor

        encode_time = (
            _TOTAL_SIMD_LANE_OPS * work / simd_rate
            + _TOTAL_SCALAR_OPS * work / scalar_rate
        )
        encode_time *= rng.gaussian_factor(profile.run_to_run_std)
        return FfmpegResult(
            platform=platform.name,
            encode_time_s=encode_time,
            threads=threads,
            preset=self.preset,
        )

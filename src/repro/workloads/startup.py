"""Startup-time probe (Figures 13, 14, 15).

Measures end-to-end process time — creation to termination — with the
payload patched to exit immediately (patched init for hypervisors/LXC, an
'exit' entry point for containers, a program-less invocation for OSv).
300 consecutive startups per platform feed the CDFs.

Two measurement methods reproduce the Finding 16 methodology check:

* ``END_TO_END``  — the full process lifetime, as measured with ``time``;
* ``STDOUT_GREP`` — stop when the platform prints its ready line, which
  skips process termination (1–2 % less).

The boot sequence runs as a discrete-event process: each
:class:`~repro.platforms.base.BootPhase` becomes a timed simulation step,
so boot samples come from the same engine as the protocol models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.platforms.base import BootPhase, Platform
from repro.rng import RngStream, materialize_streams
from repro.simcore.engine import Simulator, Timeout
from repro.units import seconds_to_ms
from repro.workloads.base import Workload

__all__ = ["MeasurementMethod", "StartupWorkload", "StartupResult"]


class MeasurementMethod(enum.Enum):
    """How the stop timestamp is taken (Finding 16)."""

    END_TO_END = "end-to-end"
    STDOUT_GREP = "stdout-grep"


#: Phases counted as "after the ready line" for the stdout-grep method.
_TERMINATION_PHASES = frozenset(
    {
        "teardown",
        "vm-teardown",
        "process-exit",
        "systemd-shutdown",
        "immediate-shutdown",
    }
)


@dataclass(frozen=True)
class StartupResult:
    """The startup-time distribution of one platform."""

    platform: str
    method: MeasurementMethod
    samples_s: tuple[float, ...]

    @property
    def mean_ms(self) -> float:
        return seconds_to_ms(float(np.mean(self.samples_s)))

    @property
    def p50_ms(self) -> float:
        return seconds_to_ms(float(np.percentile(self.samples_s, 50)))

    @property
    def p99_ms(self) -> float:
        return seconds_to_ms(float(np.percentile(self.samples_s, 99)))

    def cdf(self) -> tuple[list[float], list[float]]:
        """(sorted sample ms, cumulative probability) for CDF plotting."""
        ordered = sorted(seconds_to_ms(s) for s in self.samples_s)
        count = len(ordered)
        return ordered, [(index + 1) / count for index in range(count)]


def _boot_process(phases: list[BootPhase], phase_streams: list[RngStream]):
    """DES process: run each boot phase in sequence.

    ``phase_streams`` holds one pre-derived stream per phase (the
    ``rng.child(phase.name)`` children, batch-derived by the caller so a
    whole run's streams can be seeded in one vectorized pass).
    """
    for phase, stream in zip(phases, phase_streams):
        yield Timeout(phase.sample(stream))
    return None


class StartupWorkload(Workload):
    """300 consecutive startups, as in Section 3.5."""

    name = "startup"

    def __init__(
        self,
        startups: int = 300,
        method: MeasurementMethod = MeasurementMethod.END_TO_END,
    ) -> None:
        if startups < 1:
            raise ConfigurationError("need at least one startup")
        self.startups = startups
        self.method = method

    def run(self, platform: Platform, rng: RngStream) -> StartupResult:
        phases = platform.boot_phases()
        if self.method is MeasurementMethod.STDOUT_GREP:
            phases = [p for p in phases if p.name not in _TERMINATION_PHASES]
        # Derive every (startup, phase) stream up front: the derivation is
        # pure hashing, so the order cannot change any draw, and handing the
        # full batch to materialize_streams seeds all ~startups x phases
        # generators in one vectorized pass instead of one by one.
        phase_names = [phase.name for phase in phases]
        run_streams = rng.children(
            [f"startup-{index}" for index in range(self.startups)]
        )
        phase_streams = [run.children(phase_names) for run in run_streams]
        materialize_streams([s for streams in phase_streams for s in streams])
        samples: list[float] = []
        for index in range(self.startups):
            simulator = Simulator()
            simulator.run_process(
                _boot_process(phases, phase_streams[index]), name=f"boot-{index}"
            )
            samples.append(simulator.now)
        return StartupResult(
            platform=platform.name,
            method=self.method,
            samples_s=tuple(samples),
        )

"""iperf3 — TCP throughput (Figure 11).

The host acts as the client; the server runs inside the guest. iperf3
saturates the path, so throughput is the smaller of the wire rate and the
CPU-limited packet-processing rate along host stack + datapath + guest
stack. The paper reports the *maximum over 5 runs*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.simcore.engine import Simulator, Timeout
from repro.simcore.resources import Store, TokenBucket
from repro.units import to_gbit_per_s
from repro.workloads.base import Workload

__all__ = ["IperfWorkload", "IperfResult"]


@dataclass(frozen=True)
class IperfResult:
    """Goodput of one iperf3 run."""

    platform: str
    throughput_bytes_per_s: float
    duration_s: float

    @property
    def throughput_gbit_per_s(self) -> float:
        """Figure 11's y-axis."""
        return to_gbit_per_s(self.throughput_bytes_per_s)


class IperfWorkload(Workload):
    """One iperf3 measurement interval."""

    name = "iperf3"

    def __init__(self, duration_s: float = 10.0) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.duration_s = duration_s

    def run(self, platform: Platform, rng: RngStream) -> IperfResult:
        profile = platform.net_profile()
        nic = platform.machine.nic
        throughput = nic.achievable_throughput(profile.per_packet_cost())
        throughput *= profile.stack.throughput_efficiency()
        throughput *= rng.gaussian_factor(profile.throughput_std)
        return IperfResult(
            platform=platform.name,
            throughput_bytes_per_s=throughput,
            duration_s=self.duration_s,
        )

    def run_simulated(
        self,
        platform: Platform,
        rng: RngStream,
        *,
        sim_duration_s: float = 0.01,
        burst_bytes: int = 64 * 1024,
    ) -> IperfResult:
        """Packet-level cross-validation on the discrete-event engine.

        Two pipelined stages — the CPU (stack + datapath per-segment work)
        producing bursts, and the wire (a token bucket at line rate)
        draining them — reproduce the analytic ``min(wire, cpu)`` model
        from first principles. Used by the model-validation tests.
        """
        if sim_duration_s <= 0 or burst_bytes <= 0:
            raise ConfigurationError("simulation parameters must be positive")
        profile = platform.net_profile()
        nic = platform.machine.nic
        per_packet = nic.base_packet_cost_s + profile.per_packet_cost()

        simulator = Simulator()
        wire = TokenBucket(simulator, nic.line_rate, "wire")
        queue = Store(simulator, "tx-queue")
        delivered = {"bytes": 0}

        def sender():
            jitter = rng.child("cpu-jitter")
            while simulator.now < sim_duration_s:
                packets = burst_bytes / nic.mtu_bytes
                cpu_time = packets * per_packet * jitter.lognormal_factor(0.02)
                yield Timeout(cpu_time)
                # Backpressure: keep at most a socket buffer's worth queued.
                if len(queue) < 8:
                    queue.put(burst_bytes)
            queue.put(None)  # sentinel: sender done

        def transmitter():
            while True:
                burst = yield from queue.get()
                if burst is None:
                    return None
                yield from wire.transfer(burst)
                if simulator.now <= sim_duration_s:
                    delivered["bytes"] += burst

        simulator.spawn(sender(), "iperf-sender")
        simulator.spawn(transmitter(), "iperf-wire")
        simulator.run()

        throughput = delivered["bytes"] / sim_duration_s
        throughput *= profile.stack.throughput_efficiency()
        return IperfResult(
            platform=platform.name,
            throughput_bytes_per_s=throughput,
            duration_s=sim_duration_s,
        )

"""fio — block-level I/O benchmarks (Figures 9 and 10).

Throughput: sequential read/write in 128 KiB blocks through the libaio
engine with ``direct=1``, against a file twice the platform's RAM
pre-allocated with ``fallocate()``. Latency: 4 KiB ``randread``.

Exclusions, as in Section 3.3 (enforced via capabilities):

* Firecracker cannot attach extra storage devices;
* OSv has no working libaio engine;
* gVisor is excluded from the randread *latency* figure because its reads
  stay cached even after dropping both page caches.

The module also reproduces the paper's double-caching pitfall: running a
hypervisor without dropping the **host** buffer cache first lets guest
"direct" reads hit host memory, and the hypervisor appears faster than
bare metal (``drop_host_cache=False``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import KIB, seconds_to_us, to_mb_per_s
from repro.workloads.base import Workload

__all__ = ["FioThroughputWorkload", "FioLatencyWorkload", "FioResult", "FioLatencyResult"]

#: Share of guest "direct" reads served by the host buffer cache when the
#: host cache is not dropped (the loop-device pitfall).
_HOST_CACHE_HIT_RATIO = 0.85


@dataclass(frozen=True)
class FioResult:
    """Sequential throughput of one fio run."""

    platform: str
    read_bytes_per_s: float
    write_bytes_per_s: float
    block_bytes: int
    host_cache_dropped: bool

    @property
    def read_mb_per_s(self) -> float:
        return to_mb_per_s(self.read_bytes_per_s)

    @property
    def write_mb_per_s(self) -> float:
        return to_mb_per_s(self.write_bytes_per_s)


@dataclass(frozen=True)
class FioLatencyResult:
    """Random-read latency of one fio run."""

    platform: str
    mean_latency_s: float
    block_bytes: int

    @property
    def mean_latency_us(self) -> float:
        """Figure 10's y-axis."""
        return seconds_to_us(self.mean_latency_s)


def _require_fio(platform: Platform) -> None:
    capabilities = platform.capabilities()
    capabilities.require("attach_extra_drives")
    capabilities.require("libaio")


class FioThroughputWorkload(Workload):
    """Sequential 128 KiB read/write throughput (Figure 9)."""

    name = "fio-throughput"

    def __init__(
        self,
        block_bytes: int = 128 * KIB,
        queue_depth: int = 32,
        *,
        drop_host_cache: bool = True,
    ) -> None:
        if block_bytes <= 0:
            raise ConfigurationError("block size must be positive")
        self.block_bytes = block_bytes
        self.queue_depth = queue_depth
        self.drop_host_cache = drop_host_cache

    def check_supported(self, platform: Platform) -> None:
        _require_fio(platform)

    def run(self, platform: Platform, rng: RngStream) -> FioResult:
        self.check_supported(platform)
        profile = platform.io_profile()
        device = platform.machine.nvme

        read_bw = (
            device.sequential_bandwidth(write=False, queue_depth=self.queue_depth)
            * profile.read_efficiency
        )
        write_bw = (
            device.sequential_bandwidth(write=True, queue_depth=self.queue_depth)
            * profile.write_efficiency
        )

        if not self.drop_host_cache and profile.guest_page_cache and profile.host_page_cache:
            # The pitfall: two kernels, two caches. direct=1 bypasses only
            # the guest cache; host-cached reads return at memory speed.
            memory_bw = platform.machine.memory.copy_bandwidth()
            hit, miss = _HOST_CACHE_HIT_RATIO, 1.0 - _HOST_CACHE_HIT_RATIO
            read_bw = 1.0 / (hit / memory_bw + miss / read_bw)

        read_bw *= rng.child("read").gaussian_factor(profile.read_std)
        write_bw *= rng.child("write").gaussian_factor(profile.write_std)
        return FioResult(
            platform=platform.name,
            read_bytes_per_s=read_bw,
            write_bytes_per_s=write_bw,
            block_bytes=self.block_bytes,
            host_cache_dropped=self.drop_host_cache,
        )


class FioLatencyWorkload(Workload):
    """4 KiB randread latency (Figure 10)."""

    name = "fio-randread-latency"

    def __init__(self, block_bytes: int = 4 * KIB, samples: int = 400) -> None:
        if block_bytes <= 0:
            raise ConfigurationError("block size must be positive")
        if samples < 1:
            raise ConfigurationError("need at least one sample")
        self.block_bytes = block_bytes
        self.samples = samples

    def check_supported(self, platform: Platform) -> None:
        _require_fio(platform)
        if not platform.io_profile().honors_o_direct_end_to_end:
            raise UnsupportedOperationError(
                f"{platform.name}: reads stay cached despite dropping both "
                "page caches; excluded from the latency figure (Section 3.3)"
            )

    def run(self, platform: Platform, rng: RngStream) -> FioLatencyResult:
        self.check_supported(platform)
        profile = platform.io_profile()
        device = platform.machine.nvme
        device_rng = rng.child("device")
        total = 0.0
        for _ in range(self.samples):
            total += device.random_read_latency(device_rng, self.block_bytes)
        mean = total / self.samples + profile.per_request_latency_s
        mean *= rng.child("path").gaussian_factor(profile.latency_std)
        return FioLatencyResult(
            platform=platform.name,
            mean_latency_s=mean,
            block_bytes=self.block_bytes,
        )

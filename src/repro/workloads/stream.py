"""STREAM COPY — sustained memory bandwidth (Figure 8).

``a[i] = b[i]`` over a 2.2 GiB total allocation, 16 bytes moved per
iteration, no floating-point ops. The paper reports the average of the
per-run *maximum* over 10 runs; sequential access prefetches perfectly, so
the figure isolates bandwidth rather than latency. All four STREAM kernels
ranked platforms identically, so COPY stands in for the set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import GIB, to_mib_per_s
from repro.workloads.base import Workload

__all__ = ["StreamWorkload", "StreamResult", "StreamKernelsResult", "STREAM_KERNELS"]

#: The four STREAM kernels and their bandwidth relative to COPY. SCALE
#: and ADD/TRIAD move the same bytes with extra arithmetic; on bandwidth-
#: bound hardware ADD/TRIAD read two streams and write one (3 arrays),
#: sustaining slightly different effective rates.
STREAM_KERNELS: dict[str, float] = {
    "copy": 1.00,    # a[i] = b[i]
    "scale": 0.985,  # a[i] = q * b[i]
    "add": 1.09,     # a[i] = b[i] + c[i]   (3-array kernels report more bytes)
    "triad": 1.08,   # a[i] = b[i] + q * c[i]
}


@dataclass(frozen=True)
class StreamResult:
    """Best COPY rate of one STREAM invocation."""

    platform: str
    copy_bytes_per_s: float
    allocation_bytes: int

    @property
    def copy_mib_per_s(self) -> float:
        """Figure 8's y-axis."""
        return to_mib_per_s(self.copy_bytes_per_s)


@dataclass(frozen=True)
class StreamKernelsResult:
    """All four STREAM kernels for one run (the paper presents only COPY
    because the kernels ranked platforms identically — this result lets
    that claim be verified rather than assumed)."""

    platform: str
    rates_bytes_per_s: dict[str, float]

    def rate_mib(self, kernel: str) -> float:
        """One kernel's rate in MiB/s."""
        return to_mib_per_s(self.rates_bytes_per_s[kernel])


class StreamWorkload(Workload):
    """STREAM with the paper's 2.2 GiB working set."""

    name = "stream"

    def __init__(self, allocation_bytes: int = int(2.2 * GIB), inner_trials: int = 10) -> None:
        if allocation_bytes <= 0:
            raise ConfigurationError("allocation must be positive")
        if inner_trials < 1:
            raise ConfigurationError("need at least one trial")
        self.allocation_bytes = allocation_bytes
        self.inner_trials = inner_trials

    def run(self, platform: Platform, rng: RngStream) -> StreamResult:
        profile = platform.memory_profile()
        base = platform.machine.memory.stream_bandwidth() * profile.effective_stream_factor
        # STREAM reports the best of its internal trials: sample the max.
        best = max(
            base * rng.child(f"trial-{index}").gaussian_factor(profile.bandwidth_std)
            for index in range(self.inner_trials)
        )
        return StreamResult(
            platform=platform.name,
            copy_bytes_per_s=best,
            allocation_bytes=self.allocation_bytes,
        )

    def run_all_kernels(self, platform: Platform, rng: RngStream) -> StreamKernelsResult:
        """Run COPY/SCALE/ADD/TRIAD; platform ranking is kernel-invariant."""
        profile = platform.memory_profile()
        base = platform.machine.memory.stream_bandwidth() * profile.effective_stream_factor
        rates: dict[str, float] = {}
        for kernel, factor in STREAM_KERNELS.items():
            kernel_rng = rng.child(kernel)
            best = max(
                base * factor * kernel_rng.child(f"trial-{index}").gaussian_factor(
                    profile.bandwidth_std
                )
                for index in range(self.inner_trials)
            )
            rates[kernel] = best
        return StreamKernelsResult(platform=platform.name, rates_bytes_per_s=rates)

"""Netperf request/response — network latency (Figure 12).

TCP_RR-style ping-pong between the host and the guest; the paper reports
the 90th-percentile response time over 5 runs. Latency composes the base
round trip with two traversals of the platform's datapath and guest-stack
message processing; per-sample jitter is log-normal with a platform-
specific dispersion (immature datapaths are noisier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import seconds_to_us
from repro.workloads.base import Workload

__all__ = ["NetperfWorkload", "NetperfResult"]


@dataclass(frozen=True)
class NetperfResult:
    """Latency distribution summary of one netperf run."""

    platform: str
    mean_latency_s: float
    p50_latency_s: float
    p90_latency_s: float
    p99_latency_s: float
    transactions: int

    @property
    def p90_latency_us(self) -> float:
        """Figure 12's y-axis."""
        return seconds_to_us(self.p90_latency_s)


class NetperfWorkload(Workload):
    """TCP_RR with 1-byte payloads."""

    name = "netperf"

    def __init__(self, transactions: int = 5_000) -> None:
        if transactions < 10:
            raise ConfigurationError("need at least 10 transactions")
        self.transactions = transactions

    def run(self, platform: Platform, rng: RngStream) -> NetperfResult:
        profile = platform.net_profile()
        nic = platform.machine.nic
        base = nic.base_rtt_s + 2.0 * profile.added_latency()
        # Vectorized log-normal jitter around the architectural base RTT.
        sigma = max(1e-6, profile.latency_std * 2.2)
        mu = -0.5 * sigma * sigma
        samples = base * rng.generator.lognormal(mu, sigma, size=self.transactions)
        return NetperfResult(
            platform=platform.name,
            mean_latency_s=float(np.mean(samples)),
            p50_latency_s=float(np.percentile(samples, 50)),
            p90_latency_s=float(np.percentile(samples, 90)),
            p99_latency_s=float(np.percentile(samples, 99)),
            transactions=self.transactions,
        )

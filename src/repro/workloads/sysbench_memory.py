"""Sysbench memory benchmark — the traced memory workload of Section 4.

``sysbench memory`` writes (or reads) fixed-size blocks over a buffer
either sequentially or randomly. The paper runs it as one of the five
HAP tracing workloads; as a performance workload it corroborates the
tinymembench results: sequential mode is bandwidth-bound, random mode is
latency-bound, and the platform ranking matches Figures 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import GIB, KIB, MIB, to_mib_per_s
from repro.workloads.base import Workload

__all__ = ["SysbenchMemoryWorkload", "SysbenchMemoryResult"]


@dataclass(frozen=True)
class SysbenchMemoryResult:
    """One sysbench memory run."""

    platform: str
    mode: str                 # "seq" | "rnd"
    operation: str            # "read" | "write"
    throughput_bytes_per_s: float
    total_bytes: int

    @property
    def throughput_mib_per_s(self) -> float:
        return to_mib_per_s(self.throughput_bytes_per_s)


class SysbenchMemoryWorkload(Workload):
    """``sysbench memory --memory-access-mode={seq,rnd}``."""

    name = "sysbench-memory"

    def __init__(
        self,
        mode: str = "seq",
        operation: str = "write",
        block_bytes: int = 1 * KIB,
        total_bytes: int = 10 * GIB,
        buffer_bytes: int = 64 * MIB,
    ) -> None:
        if mode not in ("seq", "rnd"):
            raise ConfigurationError(f"unknown access mode: {mode!r}")
        if operation not in ("read", "write"):
            raise ConfigurationError(f"unknown operation: {operation!r}")
        if block_bytes <= 0 or total_bytes <= 0 or buffer_bytes <= 0:
            raise ConfigurationError("sizes must be positive")
        self.mode = mode
        self.operation = operation
        self.block_bytes = block_bytes
        self.total_bytes = total_bytes
        self.buffer_bytes = buffer_bytes

    def run(self, platform: Platform, rng: RngStream) -> SysbenchMemoryResult:
        profile = platform.memory_profile()
        memory = platform.machine.memory
        if self.mode == "seq":
            # Bandwidth-bound: prefetchers hide latency entirely.
            rate = memory.copy_bandwidth() * profile.bandwidth_factor
            if self.operation == "write":
                rate *= 0.94  # write-allocate traffic costs a little
        else:
            # Each block lands at a random offset: one dependent access
            # (latency-bound) followed by a streaming burst for the rest.
            latency = memory.random_access_latency(
                self.buffer_bytes, nested_paging=profile.effective_nested
            )
            latency *= profile.dram_latency_factor
            burst = self.block_bytes / (
                memory.copy_bandwidth() * profile.bandwidth_factor
            )
            rate = self.block_bytes / (latency + burst)
        rate *= rng.gaussian_factor(profile.bandwidth_std)
        return SysbenchMemoryResult(
            platform=platform.name,
            mode=self.mode,
            operation=self.operation,
            throughput_bytes_per_s=rate,
            total_bytes=self.total_bytes,
        )

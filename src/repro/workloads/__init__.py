"""Benchmark workloads — the programs the paper runs on every platform.

Micro-benchmarks: ffmpeg (CPU), sysbench prime (CPU), tinymembench and
STREAM (memory), fio (block I/O), iperf3 and netperf (network), and the
startup-time probe. Applications: memcached under YCSB workload-a and
MySQL under sysbench ``oltp_read_write``.

Each workload consumes platform *profiles* and returns a typed result.
Workloads validate platform capabilities and raise
:class:`~repro.errors.UnsupportedOperationError` for the paper's
exclusions (Firecracker/fio, OSv/libaio, gVisor/randread).
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.ffmpeg import FfmpegEncodeWorkload, FfmpegResult
from repro.workloads.sysbench_cpu import SysbenchCpuWorkload, SysbenchCpuResult
from repro.workloads.tinymembench import (
    TinymembenchLatencyWorkload,
    TinymembenchThroughputWorkload,
    LatencyPoint,
    ThroughputResult,
)
from repro.workloads.stream import StreamWorkload, StreamResult
from repro.workloads.fio import FioThroughputWorkload, FioLatencyWorkload, FioResult, FioLatencyResult
from repro.workloads.iperf import IperfWorkload, IperfResult
from repro.workloads.netperf import NetperfWorkload, NetperfResult
from repro.workloads.startup import StartupWorkload, StartupResult, MeasurementMethod
from repro.workloads.memcached import MemcachedYcsbWorkload, MemcachedResult
from repro.workloads.ycsb import YcsbWorkloadSpec, WORKLOAD_A
from repro.workloads.mysql import MysqlOltpWorkload, MysqlOltpResult
from repro.workloads.sysbench_memory import SysbenchMemoryWorkload, SysbenchMemoryResult
from repro.workloads.sysbench_fileio import SysbenchFileioWorkload, SysbenchFileioResult

__all__ = [
    "SysbenchMemoryWorkload",
    "SysbenchMemoryResult",
    "SysbenchFileioWorkload",
    "SysbenchFileioResult",
    "Workload",
    "WorkloadResult",
    "FfmpegEncodeWorkload",
    "FfmpegResult",
    "SysbenchCpuWorkload",
    "SysbenchCpuResult",
    "TinymembenchLatencyWorkload",
    "TinymembenchThroughputWorkload",
    "LatencyPoint",
    "ThroughputResult",
    "StreamWorkload",
    "StreamResult",
    "FioThroughputWorkload",
    "FioLatencyWorkload",
    "FioResult",
    "FioLatencyResult",
    "IperfWorkload",
    "IperfResult",
    "NetperfWorkload",
    "NetperfResult",
    "StartupWorkload",
    "StartupResult",
    "MeasurementMethod",
    "MemcachedYcsbWorkload",
    "MemcachedResult",
    "YcsbWorkloadSpec",
    "WORKLOAD_A",
    "MysqlOltpWorkload",
    "MysqlOltpResult",
]

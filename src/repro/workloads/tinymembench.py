"""Tinymembench — memory latency (Figure 6) and throughput (Figure 7).

* Latency: average time to access a random element in buffers of size
  2^16..2^26 bytes, reported as the *extra* time over the L1 floor. The
  growth comes from cache-level spill and a rising TLB-miss fraction; the
  platform's memory profile contributes the nested-paging walk penalty and
  the vm-memory-crate factor (with its characteristic dispersion).
* Throughput: single-threaded sequential copy using regular and SSE2
  instructions.

The hugepage variant reproduces the Section 3.2 aside: ~30 % lower access
latency on large buffers, equal relative platform ranking, and Kata
excluded (no hugepage support).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.platforms.base import Platform
from repro.rng import RngStream
from repro.units import seconds_to_ns, to_mib_per_s
from repro.workloads.base import Workload

__all__ = [
    "TinymembenchLatencyWorkload",
    "TinymembenchThroughputWorkload",
    "LatencyPoint",
    "ThroughputResult",
    "DEFAULT_BUFFER_EXPONENTS",
]

#: Figure 6 sweeps buffers 2^16 .. 2^26 bytes.
DEFAULT_BUFFER_EXPONENTS = tuple(range(16, 27))


@dataclass(frozen=True)
class LatencyPoint:
    """Latency at one buffer size."""

    platform: str
    buffer_bytes: int
    extra_latency_s: float
    huge_pages: bool

    @property
    def extra_latency_ns(self) -> float:
        """Figure 6's y-axis: extra time over L1 latency, nanoseconds."""
        return seconds_to_ns(self.extra_latency_s)


@dataclass(frozen=True)
class ThroughputResult:
    """Sequential copy bandwidth, regular and SSE2."""

    platform: str
    copy_bytes_per_s: float
    sse2_copy_bytes_per_s: float

    @property
    def copy_mib_per_s(self) -> float:
        return to_mib_per_s(self.copy_bytes_per_s)

    @property
    def sse2_mib_per_s(self) -> float:
        return to_mib_per_s(self.sse2_copy_bytes_per_s)


def _dram_fraction(platform: Platform, buffer_bytes: int) -> float:
    """Fraction of random accesses served from DRAM for this buffer."""
    rows = platform.machine.memory.caches.hit_fractions(buffer_bytes)
    return sum(fraction for name, fraction, _ in rows if name == "DRAM")


class TinymembenchLatencyWorkload(Workload):
    """Random-access latency sweep over buffer sizes."""

    name = "tinymembench-latency"

    def __init__(
        self,
        buffer_exponents: tuple[int, ...] = DEFAULT_BUFFER_EXPONENTS,
        *,
        huge_pages: bool = False,
    ) -> None:
        if not buffer_exponents:
            raise ConfigurationError("need at least one buffer size")
        if min(buffer_exponents) < 10 or max(buffer_exponents) > 40:
            raise ConfigurationError("buffer exponents out of sane range")
        self.buffer_exponents = tuple(buffer_exponents)
        self.huge_pages = huge_pages

    def check_supported(self, platform: Platform) -> None:
        if self.huge_pages and not platform.memory_profile().supports_hugepages:
            raise UnsupportedOperationError(
                f"{platform.name} does not support hugepages (Section 3.2)"
            )

    def run(self, platform: Platform, rng: RngStream) -> list[LatencyPoint]:
        self.check_supported(platform)
        profile = platform.memory_profile()
        memory = platform.machine.memory
        points: list[LatencyPoint] = []
        for exponent in self.buffer_exponents:
            size = 1 << exponent
            extra = memory.extra_latency_over_l1(
                size,
                huge_pages=self.huge_pages,
                nested_paging=profile.effective_nested,
            )
            # The VMM memory-path factor (vm-memory crate) applies to the
            # DRAM-bound share of accesses only: small buffers stay in cache
            # and are untouched by the hypervisor.
            dram_share = _dram_fraction(platform, size)
            extra *= 1.0 + (profile.dram_latency_factor - 1.0) * dram_share
            extra *= rng.child(f"buf-{exponent}").gaussian_factor(profile.latency_std)
            points.append(
                LatencyPoint(
                    platform=platform.name,
                    buffer_bytes=size,
                    extra_latency_s=extra,
                    huge_pages=self.huge_pages,
                )
            )
        return points


class TinymembenchThroughputWorkload(Workload):
    """Single-threaded sequential copy bandwidth (regular + SSE2)."""

    name = "tinymembench-throughput"

    def run(self, platform: Platform, rng: RngStream) -> ThroughputResult:
        profile = platform.memory_profile()
        memory = platform.machine.memory
        noise = rng.gaussian_factor(profile.bandwidth_std)
        noise_sse = rng.child("sse2").gaussian_factor(profile.bandwidth_std)
        return ThroughputResult(
            platform=platform.name,
            copy_bytes_per_s=memory.copy_bandwidth() * profile.bandwidth_factor * noise,
            sse2_copy_bytes_per_s=memory.copy_bandwidth(sse2=True)
            * profile.bandwidth_factor
            * noise_sse,
        )

"""Sysbench fileio benchmark — the traced file-I/O workload of Section 4.

``sysbench fileio`` pre-creates a set of test files and then performs
sequential or random reads/writes, optionally with fsync pressure. The
paper uses it in the HAP tracing campaign; as a performance workload it
corroborates fio: the same storage-stack profiles drive it, so platform
ordering must match Figure 9/10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import IoProfile, Platform
from repro.rng import RngStream
from repro.units import GIB, KIB, to_mb_per_s, us
from repro.workloads.base import Workload

__all__ = ["SysbenchFileioWorkload", "SysbenchFileioResult"]

#: In-kernel fsync cost on the journal path.
_FSYNC_COST_S = us(55.0)


@dataclass(frozen=True)
class SysbenchFileioResult:
    """One sysbench fileio run."""

    platform: str
    test_mode: str
    throughput_bytes_per_s: float
    fsyncs_per_second: float

    @property
    def throughput_mb_per_s(self) -> float:
        return to_mb_per_s(self.throughput_bytes_per_s)


class SysbenchFileioWorkload(Workload):
    """``sysbench fileio --file-test-mode={seqrd,seqwr,rndrd,rndwr}``."""

    MODES = ("seqrd", "seqwr", "rndrd", "rndwr")

    name = "sysbench-fileio"

    def __init__(
        self,
        test_mode: str = "rndrd",
        block_bytes: int = 16 * KIB,
        total_file_bytes: int = 2 * GIB,
        fsync_frequency: int = 100,
    ) -> None:
        if test_mode not in self.MODES:
            raise ConfigurationError(f"unknown file test mode: {test_mode!r}")
        if block_bytes <= 0 or total_file_bytes <= 0:
            raise ConfigurationError("sizes must be positive")
        if fsync_frequency < 0:
            raise ConfigurationError("fsync frequency must be non-negative")
        self.test_mode = test_mode
        self.block_bytes = block_bytes
        self.total_file_bytes = total_file_bytes
        self.fsync_frequency = fsync_frequency

    def check_supported(self, platform: Platform) -> None:
        # sysbench fileio runs on the *root* filesystem, so unlike fio it
        # does not need extra drives — but OSv still lacks the aio engine.
        platform.capabilities().require("libaio")

    def _profile(self, platform: Platform) -> IoProfile:
        try:
            return platform.io_profile()
        except Exception:
            # Firecracker: no extra drives, but its rootfs virtio-blk path
            # serves sysbench fileio fine — model it as a QEMU-class path.
            return IoProfile(
                per_request_latency_s=us(22.0),
                read_efficiency=0.95,
                write_efficiency=0.88,
                guest_page_cache=True,
            )

    def run(self, platform: Platform, rng: RngStream) -> SysbenchFileioResult:
        self.check_supported(platform)
        profile = self._profile(platform)
        device = platform.machine.nvme

        write = self.test_mode.endswith("wr")
        sequential = self.test_mode.startswith("seq")
        if sequential:
            efficiency = profile.write_efficiency if write else profile.read_efficiency
            rate = device.sequential_bandwidth(write=write, queue_depth=16) * efficiency
        else:
            latency = device.rand_read_latency_s + profile.per_request_latency_s
            if write:
                latency *= 1.25  # RMW + journaling on the write path
            rate = self.block_bytes / latency

        fsyncs = 0.0
        if write and self.fsync_frequency:
            ops_per_second = rate / self.block_bytes
            fsyncs = ops_per_second / self.fsync_frequency
            # Each fsync stalls the stream for the flush round trip.
            stall_fraction = fsyncs * (_FSYNC_COST_S + profile.per_request_latency_s)
            rate *= max(0.1, 1.0 - stall_fraction)

        rate *= rng.gaussian_factor(profile.read_std if not write else profile.write_std)
        return SysbenchFileioResult(
            platform=platform.name,
            test_mode=self.test_mode,
            throughput_bytes_per_s=rate,
            fsyncs_per_second=fsyncs,
        )

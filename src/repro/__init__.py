"""repro — a simulated reproduction of "A Fresh Look at the Architecture
and Performance of Contemporary Isolation Platforms" (Middleware '21).

Public API tour:

* :func:`repro.platforms.get_platform` — construct any studied platform;
* :mod:`repro.workloads` — the benchmark programs (ffmpeg, fio, iperf3...);
* :mod:`repro.core` — the benchmark suite: experiments, runner, figures;
* :mod:`repro.security` — HAP / EPSS isolation measurement.

Quickstart::

    from repro import BenchmarkSuite
    suite = BenchmarkSuite(seed=42)
    result = suite.run_figure("fig11")
    print(result.render())
"""

from repro.errors import (
    BootError,
    ConfigurationError,
    PlatformError,
    ReproError,
    SimulationError,
    TraceError,
    UnsupportedOperationError,
    WorkloadError,
)
from repro.rng import RngStream

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "ConfigurationError",
    "PlatformError",
    "UnsupportedOperationError",
    "WorkloadError",
    "TraceError",
    "BootError",
    "RngStream",
    "__version__",
    "BenchmarkSuite",
    "ExecutionPolicy",
    "ExperimentScheduler",
    "ResultStore",
    "StoreServer",
    "RemoteStore",
    "TieredStore",
]

_LAZY_EXPORTS = {
    "BenchmarkSuite": ("repro.core.suite", "BenchmarkSuite"),
    "ExecutionPolicy": ("repro.core.scheduler", "ExecutionPolicy"),
    "ExperimentScheduler": ("repro.core.scheduler", "ExperimentScheduler"),
    "ResultStore": ("repro.core.store", "ResultStore"),
    "StoreServer": ("repro.core.storenet", "StoreServer"),
    "RemoteStore": ("repro.core.storenet", "RemoteStore"),
    "TieredStore": ("repro.core.storenet", "TieredStore"),
}


def __getattr__(name: str):
    # Lazy import: keep `import repro` light while exposing the execution
    # layer (suite, scheduler, store) at top level.
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

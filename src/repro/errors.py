"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class PlatformError(ReproError):
    """An isolation platform refused or failed an operation."""


class UnsupportedOperationError(PlatformError):
    """The platform does not support the requested operation.

    This mirrors the real-world incompatibilities the paper reports: e.g.
    Firecracker cannot attach extra block devices, OSv has no ``libaio``
    engine and no ``fork()``/``exec()``, and Kata containers do not support
    hugepages.
    """


class WorkloadError(ReproError):
    """A workload could not be prepared or executed."""


class TraceError(ReproError):
    """ftrace-style tracing was misused (e.g. stopped before started)."""


class BootError(PlatformError):
    """A guest failed to complete its boot sequence."""

"""EPSS-style exploit-likelihood scoring for kernel functions.

The paper extends the HAP by weighing each traced host-kernel function by
its likelihood of exploitation as obtained from the EPSS model (Jacobs et
al., BlackHat '19). The real EPSS feed scores CVEs; the paper maps those
onto the functions they implicate. We reproduce the *distributional*
properties instead: per-function scores are deterministic (hash-seeded),
heavily right-skewed (most functions are near zero, a few are hot), and
boundary-exposed subsystems (network parsing, KVM emulation, filesystems)
carry systematically higher mass — matching how CVE density concentrates.
"""

from __future__ import annotations

import functools
import hashlib

from repro.kernel.functions import KernelFunction, Subsystem

__all__ = ["EpssModel"]

#: Relative exploit-likelihood multipliers per subsystem. Derived from the
#: concentration of kernel CVEs: remote-input parsers and emulators rank
#: highest, bookkeeping subsystems lowest.
_SUBSYSTEM_RISK: dict[Subsystem, float] = {
    Subsystem.TCP_IP: 2.2,
    Subsystem.NET_CORE: 1.9,
    Subsystem.NETFILTER: 2.4,
    Subsystem.KVM: 2.0,
    Subsystem.EXT4: 1.5,
    Subsystem.VFS: 1.3,
    Subsystem.FUSE: 1.6,
    Subsystem.NINEP: 2.1,
    Subsystem.VSOCK: 1.7,
    Subsystem.BRIDGE: 1.4,
    Subsystem.MM: 1.2,
    Subsystem.BLOCK: 1.0,
    Subsystem.SCHED: 0.7,
    Subsystem.IRQ: 0.6,
    Subsystem.TIME: 0.6,
    Subsystem.SIGNAL: 0.9,
    Subsystem.FUTEX: 1.8,  # futex has a storied CVE history
    Subsystem.EPOLL: 1.1,
    Subsystem.PIPE_TTY: 1.3,
    Subsystem.NAMESPACE: 1.2,
    Subsystem.CGROUP: 0.9,
    Subsystem.SECCOMP: 0.8,
    Subsystem.KSM: 1.1,
    Subsystem.SECURITY: 0.8,
}

#: Base scale chosen so median scores land in the real EPSS bulk (~1e-3).
_BASE_SCALE = 0.004


class EpssModel:
    """Deterministic per-function exploit-likelihood scores in [0, 1]."""

    def __init__(self, base_scale: float = _BASE_SCALE) -> None:
        self.base_scale = base_scale

    @staticmethod
    @functools.lru_cache(maxsize=65536)
    def _unit_draw(name: str) -> float:
        """A stable uniform draw in (0, 1] derived from the function name.

        Memoized: the draw is a pure function of the name, and every HAP
        cell re-scores the same ~6k catalog names, so the hash runs once
        per name per process instead of once per (cell, name).
        """
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
        return (int.from_bytes(digest, "little") + 1) / float(1 << 64)

    def score(self, function: KernelFunction) -> float:
        """Exploit likelihood of one function.

        A power-law transform of the per-name uniform draw produces the
        right-skewed shape of the real EPSS distribution; the subsystem
        risk multiplier shifts whole families up or down.
        """
        uniform = self._unit_draw(function.name)
        skewed = uniform ** 8  # long right tail: few hot functions
        risk = _SUBSYSTEM_RISK[function.subsystem]
        return min(1.0, self.base_scale * risk * (1.0 + 250.0 * skewed))

    def total_score(self, functions: list[KernelFunction]) -> float:
        """Sum of scores — the extended-HAP weighting."""
        return sum(self.score(fn) for fn in functions)

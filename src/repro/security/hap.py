"""The (extended) Horizontal Attack Profile — Figure 18.

The HAP (Bottomley, 2018) approximates isolation strength by the width of
the guest-to-host interface: the number of host-kernel functions a guest
workload causes to execute. Bug density need not be multiplied in because
everything is measured in the same domain (the host kernel). The paper's
*extension* weighs each function by its EPSS exploit likelihood, so an
interface concentrated in risky subsystems scores worse than an equally
wide one in benign code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.ftrace import FtraceReport
from repro.kernel.functions import KernelFunctionCatalog, Subsystem, default_catalog
from repro.platforms.base import Platform
from repro.security.epss import EpssModel
from repro.security.profiles import HAP_WORKLOADS, trace_platform

__all__ = ["HapScore", "measure_hap"]


@dataclass(frozen=True)
class HapScore:
    """The HAP measurement for one platform."""

    platform: str
    unique_functions: int
    total_invocations: int
    weighted_score: float
    by_subsystem: dict[Subsystem, int]

    def riskiest_subsystems(self, top: int = 5) -> list[tuple[Subsystem, int]]:
        """Subsystems contributing the most distinct functions."""
        ranked = sorted(self.by_subsystem.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:top]


def measure_hap(
    platform: Platform,
    catalog: KernelFunctionCatalog | None = None,
    epss: EpssModel | None = None,
    workloads: tuple[str, ...] = HAP_WORKLOADS,
) -> HapScore:
    """Trace the platform across the Section 4 workloads and score it."""
    catalog = catalog if catalog is not None else default_catalog()
    epss = epss if epss is not None else EpssModel()
    report: FtraceReport = trace_platform(platform, catalog, workloads)
    functions = report.functions()
    return HapScore(
        platform=platform.name,
        unique_functions=report.unique_functions,
        total_invocations=report.total_invocations,
        weighted_score=epss.total_score(functions),
        by_subsystem=report.by_subsystem(),
    )


def measure_hap_per_workload(
    platform: Platform,
    catalog: KernelFunctionCatalog | None = None,
    epss: EpssModel | None = None,
    workloads: tuple[str, ...] = HAP_WORKLOADS,
) -> dict[str, HapScore]:
    """Per-workload HAP breakdown (an extension beyond the paper's union).

    Shows *which* workload widens each platform's interface: networking
    for gVisor, the boot/agent machinery for Kata, file I/O for the
    containers. The union of these per-workload scores is bounded by the
    :func:`measure_hap` result (breadth prefixes overlap across
    workloads).
    """
    catalog = catalog if catalog is not None else default_catalog()
    epss = epss if epss is not None else EpssModel()
    breakdown: dict[str, HapScore] = {}
    for workload in workloads:
        report = trace_platform(platform, catalog, (workload,))
        functions = report.functions()
        breakdown[workload] = HapScore(
            platform=platform.name,
            unique_functions=report.unique_functions,
            total_invocations=report.total_invocations,
            weighted_score=epss.total_score(functions),
            by_subsystem=report.by_subsystem(),
        )
    return breakdown

"""Security and isolation measurement (Section 4).

* :mod:`repro.security.epss`     — exploit-likelihood scores per kernel function
* :mod:`repro.security.profiles` — per-platform host-interaction breadth tables
* :mod:`repro.security.hap`      — the (extended) Horizontal Attack Profile
* :mod:`repro.security.analysis` — defense-in-depth audit (Finding 28)
"""

from repro.security.epss import EpssModel
from repro.security.hap import HapScore, measure_hap
from repro.security.profiles import HAP_BREADTH, WORKLOAD_AFFINITY, trace_platform
from repro.security.analysis import DefenseInDepthAudit, audit_platform

__all__ = [
    "EpssModel",
    "HapScore",
    "measure_hap",
    "HAP_BREADTH",
    "WORKLOAD_AFFINITY",
    "trace_platform",
    "DefenseInDepthAudit",
    "audit_platform",
]

"""Per-platform host-interaction breadth tables.

Section 4 traces, per platform, which host-kernel functions run while
executing five workloads (Sysbench CPU / memory / fileio, iperf3, and a
start-idle-shutdown cycle). Each platform's architecture determines which
host subsystems its guests exercise and how deeply:

* containers call straight into the host kernel — broad VFS/net/sched
  coverage, plus the namespace/cgroup machinery;
* hypervisors funnel everything through KVM plus their backend syscalls —
  the guest's filesystem/TCP stacks run *inside* the guest, thinning the
  host's VFS/TCP coverage while KVM's breadth explodes. Firecracker's
  userspace-bounced virtqueue kicks and synchronous backends make it the
  *widest* interface of all (Finding 24), while work-in-progress Cloud
  Hypervisor exercises remarkably little (Finding 25);
* secure containers pay both sides: gVisor's Sentry is a heavy direct
  consumer of host mm/futex/epoll (Finding 26), Kata stacks the container
  plumbing on top of a full hypervisor profile;
* OSv's single-purpose image drives the narrowest interface (Finding 27).

Breadths are fractions of each subsystem's rank-ordered function list
(see :class:`repro.kernel.functions.KernelFunctionCatalog`).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernel.ftrace import Ftrace, FtraceReport
from repro.kernel.functions import KernelFunctionCatalog, Subsystem
from repro.platforms.base import Platform

__all__ = ["HAP_BREADTH", "WORKLOAD_AFFINITY", "HAP_WORKLOADS", "trace_platform"]

S = Subsystem

#: The five traced workloads (Section 4).
HAP_WORKLOADS = ("sysbench-cpu", "sysbench-memory", "sysbench-fileio", "iperf3", "boot-shutdown")

#: Maximum breadth per subsystem, per platform profile name.
HAP_BREADTH: dict[str, dict[Subsystem, float]] = {
    "native": {
        S.SCHED: 0.30, S.MM: 0.32, S.VFS: 0.28, S.EXT4: 0.25, S.BLOCK: 0.28,
        S.NET_CORE: 0.30, S.TCP_IP: 0.32, S.IRQ: 0.35, S.TIME: 0.35,
        S.SIGNAL: 0.25, S.FUTEX: 0.45, S.EPOLL: 0.35, S.PIPE_TTY: 0.18,
        S.SECURITY: 0.20,
    },
    "docker": {
        S.SCHED: 0.30, S.MM: 0.32, S.VFS: 0.30, S.EXT4: 0.25, S.BLOCK: 0.28,
        S.NET_CORE: 0.32, S.TCP_IP: 0.32, S.IRQ: 0.35, S.TIME: 0.35,
        S.SIGNAL: 0.25, S.FUTEX: 0.45, S.EPOLL: 0.35, S.PIPE_TTY: 0.20,
        S.SECURITY: 0.30, S.NAMESPACE: 0.45, S.CGROUP: 0.45, S.BRIDGE: 0.50,
        S.NETFILTER: 0.30, S.SECCOMP: 0.60,
    },
    "lxc": {
        S.SCHED: 0.30, S.MM: 0.32, S.VFS: 0.30, S.EXT4: 0.25, S.BLOCK: 0.28,
        S.NET_CORE: 0.32, S.TCP_IP: 0.32, S.IRQ: 0.35, S.TIME: 0.35,
        S.SIGNAL: 0.25, S.FUTEX: 0.45, S.EPOLL: 0.35, S.PIPE_TTY: 0.20,
        S.SECURITY: 0.28, S.NAMESPACE: 0.48, S.CGROUP: 0.50, S.BRIDGE: 0.50,
        S.SECCOMP: 0.30,
    },
    "qemu": {
        S.SCHED: 0.32, S.MM: 0.34, S.VFS: 0.22, S.EXT4: 0.22, S.BLOCK: 0.25,
        S.NET_CORE: 0.28, S.TCP_IP: 0.18, S.BRIDGE: 0.45, S.NETFILTER: 0.15,
        S.KVM: 0.75, S.IRQ: 0.50, S.TIME: 0.50, S.SIGNAL: 0.30, S.FUTEX: 0.50,
        S.EPOLL: 0.45, S.PIPE_TTY: 0.25, S.SECURITY: 0.15, S.KSM: 0.50,
    },
    "firecracker": {
        S.SCHED: 0.45, S.MM: 0.45, S.VFS: 0.28, S.EXT4: 0.28, S.BLOCK: 0.32,
        S.NET_CORE: 0.35, S.TCP_IP: 0.22, S.BRIDGE: 0.45, S.NETFILTER: 0.15,
        S.KVM: 0.85, S.IRQ: 0.60, S.TIME: 0.60, S.SIGNAL: 0.45, S.FUTEX: 0.65,
        S.EPOLL: 0.60, S.PIPE_TTY: 0.30, S.SECURITY: 0.25, S.SECCOMP: 0.70,
    },
    "cloud-hypervisor": {
        S.SCHED: 0.15, S.MM: 0.22, S.VFS: 0.10, S.EXT4: 0.08, S.BLOCK: 0.12,
        S.NET_CORE: 0.12, S.TCP_IP: 0.05, S.BRIDGE: 0.30, S.KVM: 0.55,
        S.IRQ: 0.25, S.TIME: 0.30, S.SIGNAL: 0.15, S.FUTEX: 0.35,
        S.EPOLL: 0.30, S.PIPE_TTY: 0.10, S.SECURITY: 0.10, S.SECCOMP: 0.50,
    },
    "kata": {
        S.SCHED: 0.34, S.MM: 0.36, S.VFS: 0.24, S.EXT4: 0.24, S.BLOCK: 0.26,
        S.NET_CORE: 0.30, S.TCP_IP: 0.20, S.BRIDGE: 0.50, S.NETFILTER: 0.30,
        S.KVM: 0.72, S.IRQ: 0.52, S.TIME: 0.52, S.SIGNAL: 0.32, S.FUTEX: 0.52,
        S.EPOLL: 0.48, S.PIPE_TTY: 0.27, S.SECURITY: 0.25, S.NAMESPACE: 0.45,
        S.CGROUP: 0.50, S.SECCOMP: 0.50, S.VSOCK: 0.75,
    },
    "gvisor": {
        S.SCHED: 0.40, S.MM: 0.50, S.VFS: 0.25, S.EXT4: 0.25, S.BLOCK: 0.20,
        S.NET_CORE: 0.30, S.TCP_IP: 0.10, S.BRIDGE: 0.50, S.NETFILTER: 0.30,
        S.KVM: 0.45, S.IRQ: 0.40, S.TIME: 0.55, S.SIGNAL: 0.55, S.FUTEX: 0.80,
        S.EPOLL: 0.55, S.PIPE_TTY: 0.50, S.SECURITY: 0.30, S.NAMESPACE: 0.45,
        S.CGROUP: 0.45, S.SECCOMP: 0.95,
    },
    "osv": {
        S.SCHED: 0.10, S.MM: 0.15, S.VFS: 0.06, S.EXT4: 0.05, S.BLOCK: 0.08,
        S.NET_CORE: 0.10, S.BRIDGE: 0.30, S.KVM: 0.50, S.IRQ: 0.20,
        S.TIME: 0.25, S.SIGNAL: 0.10, S.FUTEX: 0.25, S.EPOLL: 0.25,
        S.PIPE_TTY: 0.08,
    },
}

#: How strongly each workload exercises each subsystem, as a fraction of
#: the platform's maximum breadth. Every subsystem reaches 1.0 in at least
#: one workload, so the union over all workloads equals HAP_BREADTH.
_DEFAULT_AFFINITY = 0.15
WORKLOAD_AFFINITY: dict[str, dict[Subsystem, float]] = {
    # vsock is control-plane only: the kata-agent channel is idle while a
    # pure compute/memory/file workload runs, so those workloads pin its
    # affinity to zero explicitly.
    "sysbench-cpu": {
        S.SCHED: 1.0, S.TIME: 0.6, S.IRQ: 0.5, S.SIGNAL: 0.3, S.MM: 0.3,
        S.FUTEX: 0.4, S.KVM: 0.6, S.VSOCK: 0.0,
    },
    "sysbench-memory": {
        S.MM: 1.0, S.SCHED: 0.5, S.KVM: 0.9, S.TIME: 0.4, S.IRQ: 0.4,
        S.KSM: 1.0, S.VSOCK: 0.0,
    },
    "sysbench-fileio": {
        S.VFS: 1.0, S.EXT4: 1.0, S.BLOCK: 1.0, S.MM: 0.5, S.SCHED: 0.5,
        S.KVM: 0.8, S.EPOLL: 0.6, S.FUSE: 1.0, S.NINEP: 1.0, S.SECURITY: 0.6,
        S.VSOCK: 0.0,
    },
    "iperf3": {
        S.NET_CORE: 1.0, S.TCP_IP: 1.0, S.BRIDGE: 1.0, S.NETFILTER: 1.0,
        S.EPOLL: 1.0, S.SCHED: 0.6, S.KVM: 0.9, S.VSOCK: 0.5, S.IRQ: 1.0,
    },
    "boot-shutdown": {
        S.NAMESPACE: 1.0, S.CGROUP: 1.0, S.SECCOMP: 1.0, S.VSOCK: 1.0,
        S.PIPE_TTY: 1.0, S.SECURITY: 1.0, S.SIGNAL: 1.0, S.FUTEX: 1.0,
        S.TIME: 1.0, S.KVM: 1.0, S.MM: 0.7, S.VFS: 0.6, S.SCHED: 0.7,
    },
}

#: Relative invocation volume per workload (hit-count scaling only).
_WORKLOAD_INTENSITY = {
    "sysbench-cpu": 40.0,
    "sysbench-memory": 120.0,
    "sysbench-fileio": 300.0,
    "iperf3": 500.0,
    "boot-shutdown": 15.0,
}


def profile_for(platform: Platform) -> dict[Subsystem, float]:
    """The breadth table for a platform (via its profile name)."""
    name = platform.hap_profile_name()
    try:
        return HAP_BREADTH[name]
    except KeyError:
        raise ConfigurationError(f"no HAP profile for platform {name!r}") from None


def trace_platform(
    platform: Platform,
    catalog: KernelFunctionCatalog,
    workloads: tuple[str, ...] = HAP_WORKLOADS,
) -> FtraceReport:
    """Run the Section 4 tracing campaign against one platform.

    Each workload opens an ftrace session and records breadth-scaled hits;
    the per-workload reports are unioned, as in the paper.
    """
    breadth_table = profile_for(platform)
    merged: FtraceReport | None = None
    for workload in workloads:
        if workload not in WORKLOAD_AFFINITY:
            raise ConfigurationError(f"unknown HAP workload: {workload!r}")
        affinity = WORKLOAD_AFFINITY[workload]
        intensity = _WORKLOAD_INTENSITY[workload]
        tracer = Ftrace(catalog)
        tracer.start()
        for subsystem, max_breadth in breadth_table.items():
            factor = affinity.get(subsystem, _DEFAULT_AFFINITY)
            breadth = max_breadth * factor
            if breadth > 0.0:
                tracer.record_breadth(subsystem, breadth, invocations_per_function=intensity)
        report = tracer.stop()
        merged = report if merged is None else merged.merge(report)
    assert merged is not None
    return merged

"""Defense-in-depth audit — what the HAP cannot see (Finding 28).

The HAP measures the *width* of the guest-to-host interface but not the
number of independent barriers an attacker must cross (the *vertical*
dimension). Kata has a wide HAP yet layers namespaces + a hardware VM;
a plain container has a narrow HAP but a single kernel between tenant and
host. This module scores both dimensions so the Finding 28 caveat is
reproducible, not just quotable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.base import Platform
from repro.security.hap import HapScore

__all__ = ["DefenseInDepthAudit", "audit_platform"]

#: Barrier classes and the weight of crossing each independently.
_BARRIER_WEIGHTS: dict[str, float] = {
    "hardware-virtualization": 3.0,
    "separate-guest-kernel": 2.0,
    "single-address-space-kernel": 1.0,
    "sentry-syscall-interception": 2.0,
    "sentry-seccomp-allowlist": 1.5,
    "gofer-io-proxy": 1.0,
    "jailer-chroot": 0.5,
    "seccomp-vmm-filter": 1.0,
    "seccomp-default-profile": 0.8,
    "apparmor-profile": 0.5,
    "capabilities-drop": 0.5,
    "uid-mapping": 0.8,
    "iommu-dma-isolation": 0.5,
    "minimal-host-interface": 0.5,
    "process-boundary": 0.2,
}
_NAMESPACE_WEIGHT = 0.25
_CGROUP_WEIGHT = 0.2


@dataclass(frozen=True)
class DefenseInDepthAudit:
    """Layered-isolation assessment of one platform."""

    platform: str
    mechanisms: tuple[str, ...]
    depth_score: float
    hap_unique_functions: int | None = None

    @property
    def layers(self) -> int:
        """Count of independent isolation mechanisms."""
        return len(self.mechanisms)

    def summary(self) -> str:
        """One-line report row."""
        hap = (
            f"HAP={self.hap_unique_functions}"
            if self.hap_unique_functions is not None
            else "HAP=n/a"
        )
        return (
            f"{self.platform}: depth={self.depth_score:.1f} "
            f"({self.layers} layers), {hap}"
        )


def _mechanism_weight(mechanism: str) -> float:
    if mechanism.startswith("namespace:"):
        return _NAMESPACE_WEIGHT
    if mechanism.startswith("cgroups"):
        return _CGROUP_WEIGHT
    return _BARRIER_WEIGHTS.get(mechanism, 0.3)


def audit_platform(platform: Platform, hap: HapScore | None = None) -> DefenseInDepthAudit:
    """Score a platform's vertical isolation depth."""
    mechanisms = tuple(platform.isolation_mechanisms())
    depth = sum(_mechanism_weight(m) for m in mechanisms)
    return DefenseInDepthAudit(
        platform=platform.name,
        mechanisms=mechanisms,
        depth_score=depth,
        hap_unique_functions=hap.unique_functions if hap is not None else None,
    )

"""virtio-net: the paravirtualized NIC (paired with a host TAP device).

Per-packet costs live in :class:`repro.kernel.netdev.TapVirtioPath`; this
module adds the queue-level knobs that differ between VMMs (merged rx
buffers, multiqueue, vhost-net offload) as a single efficiency factor used
by the network workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.virtio.queue import Virtqueue

__all__ = ["VirtioNet"]


@dataclass(frozen=True)
class VirtioNet:
    """Cost model of one virtio-net device."""

    name: str = "virtio-net"
    rx_queue: Virtqueue = field(default_factory=lambda: Virtqueue("net-rx", batch_size=16.0))
    tx_queue: Virtqueue = field(default_factory=lambda: Virtqueue("net-tx", batch_size=16.0))
    #: 1.0 = fully tuned datapath (vhost-net, mergeable buffers); lower
    #: values model missing offloads in younger device models.
    datapath_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.datapath_efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: efficiency must be in (0, 1]")

    def per_packet_queue_cost(self) -> float:
        """Ring-crossing cost per packet, both directions averaged."""
        cost = 0.5 * (
            self.rx_queue.per_request_cost() + self.tx_queue.per_request_cost()
        )
        return cost / self.datapath_efficiency

    def added_round_trip_latency(self) -> float:
        """Request/response latency added by the two ring crossings."""
        return (
            self.rx_queue.round_trip_latency() + self.tx_queue.round_trip_latency()
        ) / (2.0 * self.datapath_efficiency)

"""The virtqueue: shared-memory descriptor ring between guest and VMM.

A request crosses the ring in four steps: the guest posts descriptors,
*kicks* the device (an MMIO/PIO write → VM exit, or an ioeventfd the host
kernel absorbs), the device-model thread processes the batch, and completion
raises an interrupt back into the guest (another world switch). Batching
amortizes kicks over many requests — this is why large sequential I/O
hardly suffers while small random I/O pays per-request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.kernel.kvm import ExitReason, KvmModule
from repro.units import us

__all__ = ["Virtqueue"]


@dataclass(frozen=True)
class Virtqueue:
    """Cost model of one virtqueue.

    * ``size`` — ring entries (QEMU default 256, Firecracker 256);
    * ``ioeventfd`` — whether kicks are absorbed in the kernel (QEMU/CLH)
      or bounced to the VMM process (Firecracker polls its own epoll loop);
    * ``batch_size`` — average requests per kick under load.
    """

    name: str
    size: int = 256
    ioeventfd: bool = True
    batch_size: float = 8.0
    descriptor_processing_s: float = us(0.35)
    interrupt_injection_s: float = us(1.1)

    def __post_init__(self) -> None:
        if self.size < 2 or self.size & (self.size - 1):
            raise ConfigurationError(f"{self.name}: ring size must be a power of two >= 2")
        if self.batch_size < 1.0:
            raise ConfigurationError(f"{self.name}: batch size must be >= 1")

    def kick_cost(self) -> float:
        """Cost of one guest->host notification (a VM exit)."""
        return KvmModule.exit_cost(
            ExitReason.VIRTQUEUE_KICK, to_userspace=not self.ioeventfd
        )

    def per_request_cost(self, *, loaded: bool = True) -> float:
        """Average ring-crossing cost per request.

        Under load the kick and interrupt amortize over ``batch_size``
        requests; an idle queue pays full freight per request.
        """
        batch = self.batch_size if loaded else 1.0
        return (
            self.kick_cost() / batch
            + self.descriptor_processing_s
            + self.interrupt_injection_s / batch
        )

    def round_trip_latency(self) -> float:
        """Latency of a single un-batched request/response crossing."""
        return self.kick_cost() + self.descriptor_processing_s + self.interrupt_injection_s

"""vsock: host/guest sockets.

Kata exposes the kata-agent's ttRPC server to the host runtime through a
vsock file (Section 2.3.1); every ``docker exec`` and lifecycle command
crosses it. The channel matters for container startup (agent handshake)
and for the HAP's vsock subsystem breadth, not for data-plane throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import us

__all__ = ["VsockChannel"]


@dataclass(frozen=True)
class VsockChannel:
    """Cost model of a host<->guest vsock connection."""

    name: str = "vsock"
    connect_cost_s: float = us(180.0)
    round_trip_s: float = us(38.0)
    #: ttRPC serialization on top of the raw socket round trip.
    rpc_overhead_s: float = us(21.0)

    def __post_init__(self) -> None:
        if min(self.connect_cost_s, self.round_trip_s, self.rpc_overhead_s) < 0:
            raise ConfigurationError("vsock costs must be non-negative")

    def rpc_latency(self) -> float:
        """One ttRPC request/response over the channel."""
        return self.round_trip_s + self.rpc_overhead_s

    def handshake_cost(self, rpc_count: int) -> float:
        """Connect plus ``rpc_count`` setup RPCs (container creation flow)."""
        if rpc_count < 0:
            raise ConfigurationError("negative RPC count")
        return self.connect_cost_s + rpc_count * self.rpc_latency()

"""The 9P filesystem protocol (Plan 9, 1991; kernel client unmaintained
since 2012).

Two platforms in the study stand or fall with 9P:

* **Kata containers** share the container rootfs from host to guest over
  9p-on-virtio by default — the root cause of Kata's "exceptionally poor"
  fio latency (Figure 10, Finding 7);
* **gVisor** forbids the Sentry all I/O syscalls, so every file operation
  becomes a 9P RPC to the Gofer process (Finding 8).

9P is a strict request/response protocol: every operation is at least one
round trip, payloads are chopped into ``msize`` chunks, and the protocol
offers no readahead or caching hints suited to a co-located host/guest
pair — the design assumption (a network between client and server) that
virtio-fs later dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import KIB, us

__all__ = ["NinePChannel"]


@dataclass(frozen=True)
class NinePChannel:
    """Cost model of one 9P channel.

    ``transport_rtt_s`` is the underlying channel's round trip: a virtqueue
    crossing for Kata (9p-on-virtio), a unix-socket hop for gVisor's
    Sentry<->Gofer pair.
    """

    name: str = "9p"
    msize_bytes: int = 512 * KIB
    transport_rtt_s: float = us(9.0)
    server_processing_s: float = us(30.0)
    #: Walk/open/clunk amplification: one logical file op averages this many
    #: protocol RPCs (Twalk, Topen, Tread..., Tclunk).
    rpc_amplification: float = 3.2
    per_byte_cost_s: float = 1.0 / (1.9e9)  # ~1.9 GB/s protocol copy ceiling

    def __post_init__(self) -> None:
        if self.msize_bytes < 4 * KIB:
            raise ConfigurationError("msize unrealistically small")
        if self.rpc_amplification < 1.0:
            raise ConfigurationError("amplification must be >= 1")

    def rpc_round_trip(self) -> float:
        """Latency of a single 9P RPC."""
        return self.transport_rtt_s + self.server_processing_s

    def operation_latency(self, payload_bytes: int = 0) -> float:
        """Latency of one logical file operation carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ConfigurationError("negative payload")
        chunks = max(1, -(-payload_bytes // self.msize_bytes))  # ceil
        rpcs = self.rpc_amplification + (chunks - 1)
        return rpcs * self.rpc_round_trip() + payload_bytes * self.per_byte_cost_s

    def streaming_bandwidth(self) -> float:
        """Sustained bytes/second for large sequential transfers.

        Each ``msize`` chunk pays a round trip; the protocol copy ceiling
        caps the rest. This lands 9P at roughly half of native NVMe speed,
        matching Figure 9's gVisor/Kata results.
        """
        per_chunk = self.rpc_round_trip() + self.msize_bytes * self.per_byte_cost_s
        return self.msize_bytes / per_chunk

"""virtio-fs: FUSE over virtio with DAX window support.

The successor to 9P for host/guest file sharing (Section 3.3): it drops
the "client and server are separated by a network" assumption, carries
FUSE requests over a virtqueue, and can map file contents directly into
the guest (DAX), removing per-byte copies entirely for cached data. The
paper finds Kata+virtio-fs on par with plain QEMU block I/O (Finding 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import us
from repro.virtio.queue import Virtqueue

__all__ = ["VirtioFs"]


@dataclass(frozen=True)
class VirtioFs:
    """Cost model of one virtio-fs mount."""

    name: str = "virtiofs"
    queue: Virtqueue = field(default_factory=lambda: Virtqueue("fs-vq", batch_size=8.0))
    daemon_processing_s: float = us(7.0)  # virtiofsd request handling
    dax_enabled: bool = True
    #: Fraction of data operations served through the DAX window (no copy).
    dax_hit_ratio: float = 0.55
    per_byte_cost_s: float = 1.0 / (6.5e9)  # shared-memory copy path

    def __post_init__(self) -> None:
        if not 0.0 <= self.dax_hit_ratio <= 1.0:
            raise ConfigurationError("DAX hit ratio must be in [0, 1]")

    def operation_latency(self, payload_bytes: int = 0) -> float:
        """Latency of one FUSE operation carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ConfigurationError("negative payload")
        latency = self.queue.round_trip_latency() + self.daemon_processing_s
        copy_bytes = payload_bytes
        if self.dax_enabled:
            copy_bytes *= 1.0 - self.dax_hit_ratio
        return latency + copy_bytes * self.per_byte_cost_s

    def streaming_bandwidth(self) -> float:
        """Sustained bytes/second for large sequential transfers."""
        chunk = 1 << 20  # FUSE max_write-sized chunks
        per_chunk = self.queue.per_request_cost() + self.daemon_processing_s
        copy = chunk * self.per_byte_cost_s
        if self.dax_enabled:
            copy *= 1.0 - self.dax_hit_ratio
        return chunk / (per_chunk + copy)

"""virtio-blk: the paravirtualized block device.

The guest's block requests cross a virtqueue into the VMM's disk handler,
which issues host I/O against the backing file/device. Costs: the ring
crossing per request, the VMM's request handling, and (for the throughput
figures) a bandwidth efficiency for the host-side backing path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import us
from repro.virtio.queue import Virtqueue

__all__ = ["VirtioBlk"]


@dataclass(frozen=True)
class VirtioBlk:
    """Cost model of one virtio-blk device.

    ``vmm_request_handling_s`` reflects the device-model implementation:
    QEMU's mature AIO path is cheap; younger Rust VMMs do more per-request
    work (Cloud Hypervisor's poor Figure 9 throughput).
    """

    name: str = "virtio-blk"
    queue: Virtqueue = field(default_factory=lambda: Virtqueue("blk-vq"))
    vmm_request_handling_s: float = us(3.0)
    bandwidth_efficiency: float = 0.97

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: efficiency must be in (0, 1]")
        if self.vmm_request_handling_s < 0:
            raise ConfigurationError(f"{self.name}: negative handling cost")

    def per_request_overhead(self, *, loaded: bool = True) -> float:
        """Added latency per block request versus host-native I/O."""
        return self.queue.per_request_cost(loaded=loaded) + self.vmm_request_handling_s

    def request_latency_overhead(self) -> float:
        """Un-batched single-request overhead (the fio randread case)."""
        return self.queue.round_trip_latency() + self.vmm_request_handling_s

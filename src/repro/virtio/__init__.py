"""Virtio transports and guest/host sharing protocols.

The paravirtualized device family every hypervisor in the study relies on:

* :mod:`repro.virtio.queue` — the virtqueue ring (descriptors, kicks, irqs)
* :mod:`repro.virtio.blk`   — virtio-blk block devices
* :mod:`repro.virtio.net`   — virtio-net (paired with a host TAP device)
* :mod:`repro.virtio.fs`    — virtio-fs (FUSE over virtio, with DAX)
* :mod:`repro.virtio.ninep` — the 9P filesystem protocol (Kata default,
  gVisor's Sentry<->Gofer channel)
* :mod:`repro.virtio.vsock` — host/guest sockets (kata-agent ttRPC carrier)
"""

from repro.virtio.queue import Virtqueue
from repro.virtio.blk import VirtioBlk
from repro.virtio.net import VirtioNet
from repro.virtio.fs import VirtioFs
from repro.virtio.ninep import NinePChannel
from repro.virtio.vsock import VsockChannel

__all__ = [
    "Virtqueue",
    "VirtioBlk",
    "VirtioNet",
    "VirtioFs",
    "NinePChannel",
    "VsockChannel",
]

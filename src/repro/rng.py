"""Deterministic random-number streams.

Reproducibility is a first-class requirement: the paper's figures come with
error bars and CDFs over hundreds of repetitions, and our reproduction must
regenerate them bit-identically for a given seed while keeping the variance
realistic.

The design follows the standard "seed tree" pattern: a root
:class:`RngStream` is created from the experiment seed, and every component
derives an *independent* child stream from a stable string path such as
``"fig13/docker/run-42"``. Children are derived by hashing, so adding a new
consumer never perturbs the draws seen by existing consumers — figures stay
stable as the library grows.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["RngStream", "derive_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, path: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a string path."""
    digest = hashlib.blake2b(
        path.encode("utf-8"), digest_size=8, key=int(seed & _MASK64).to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class RngStream:
    """A named, hierarchical deterministic random stream.

    Wraps :class:`numpy.random.Generator` and adds:

    * ``child(name)`` — derive an independent stream for a sub-component;
    * convenience distributions used by the performance models
      (log-normal service times, bounded Gaussian noise).
    """

    def __init__(self, seed: int, path: str = "root") -> None:
        self.seed = int(seed) & _MASK64
        self.path = path
        self._generator = np.random.Generator(np.random.PCG64(self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(path={self.path!r}, seed={self.seed:#x})"

    # --- stream derivation -------------------------------------------------

    def child(self, name: str) -> "RngStream":
        """Return an independent child stream identified by ``name``."""
        child_path = f"{self.path}/{name}"
        return RngStream(derive_seed(self.seed, child_path), child_path)

    def children(self, names: Iterable[str]) -> list["RngStream"]:
        """Derive one child stream per name, in order."""
        return [self.child(name) for name in names]

    # --- raw draws ----------------------------------------------------------

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for bulk vectorized draws)."""
        return self._generator

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self._generator.exponential(mean))

    def choice(self, options: list, probabilities: list[float] | None = None):
        """Pick one element, optionally with explicit probabilities."""
        index = self._generator.choice(len(options), p=probabilities)
        return options[int(index)]

    # --- modelling distributions --------------------------------------------

    def gaussian_factor(self, relative_std: float, *, clip: float = 4.0) -> float:
        """A multiplicative noise factor ``~ N(1, relative_std)``.

        The draw is clipped to ``1 +/- clip * relative_std`` and floored at a
        small positive value so downstream durations stay physical.
        """
        if relative_std <= 0.0:
            return 1.0
        draw = self._generator.normal(1.0, relative_std)
        lower = max(1e-3, 1.0 - clip * relative_std)
        upper = 1.0 + clip * relative_std
        return float(min(max(draw, lower), upper))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative factor from a mean-1 log-normal distribution.

        Log-normal multiplicative noise is the standard model for service
        times in systems measurement: strictly positive and right-skewed
        (occasional slow runs), matching the long upper tails visible in the
        paper's startup-time CDFs.
        """
        if sigma <= 0.0:
            return 1.0
        mu = -0.5 * sigma * sigma  # mean of exp(N(mu, sigma)) == 1
        return float(self._generator.lognormal(mu, sigma))

    def pareto_tail(self, probability: float, scale: float, alpha: float = 2.5) -> float:
        """Occasionally return a heavy-tail additive delay, else 0.

        Models rare hiccups (host scheduling, cache-drop interference) that
        produce the outlier dots in the paper's figures.
        """
        if probability <= 0.0 or self.uniform() >= probability:
            return 0.0
        return float(scale * (1.0 + self._generator.pareto(alpha)))

"""Deterministic random-number streams.

Reproducibility is a first-class requirement: the paper's figures come with
error bars and CDFs over hundreds of repetitions, and our reproduction must
regenerate them bit-identically for a given seed while keeping the variance
realistic.

The design follows the standard "seed tree" pattern: a root
:class:`RngStream` is created from the experiment seed, and every component
derives an *independent* child stream from a stable string path such as
``"fig13/docker/run-42"``. Children are derived by hashing, so adding a new
consumer never perturbs the draws seen by existing consumers — figures stay
stable as the library grows.

Two properties keep stream creation off the hot path without changing a
single draw:

* **Lazy generators** — deriving a stream only hashes its path; the
  backing :class:`numpy.random.Generator` is built on first draw. Interior
  seed-tree nodes (a platform's stream that only exists to derive per-rep
  children, a repetition's stream that only derives per-phase children)
  never pay for a generator at all.
* **Vectorized seeding** — ``PCG64(seed)`` spends ~90 % of its time in
  :class:`numpy.random.SeedSequence`'s entropy-mixing hash. That hash is
  pure 32-bit integer arithmetic, so :func:`materialize_streams` replays
  it *vectorized across every stream of a batch* (one numpy pass instead
  of one Cython SeedSequence per stream) and hands each stream its
  precomputed PCG64 seed state. Bit-identity is enforced by
  construction-time tests comparing against ``SeedSequence`` itself and
  by the figure golden values.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RngStream",
    "derive_seed",
    "derive_seeds",
    "materialize_streams",
]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, path: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a string path."""
    digest = hashlib.blake2b(
        path.encode("utf-8"), digest_size=8, key=int(seed & _MASK64).to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def derive_seeds(seed: int, paths: Sequence[str]) -> list[int]:
    """Batch :func:`derive_seed`: one child seed per path, in order.

    The keyed hash state is initialized once and copied per path, which
    skips blake2b's per-call key-block setup — same digests, less work
    when a grid derives hundreds of sibling streams.
    """
    template = hashlib.blake2b(
        digest_size=8, key=int(seed & _MASK64).to_bytes(8, "little")
    )
    seeds = []
    for path in paths:
        hasher = template.copy()
        hasher.update(path.encode("utf-8"))
        seeds.append(int.from_bytes(hasher.digest(), "little"))
    return seeds


# --- vectorized SeedSequence --------------------------------------------------------
#
# numpy seeds PCG64 by pumping the integer seed through SeedSequence's
# entropy-mixing hash (O'Neill's seed_seq_fe alike) and taking 4 uint64
# output words. The hash is plain wrapping uint32 arithmetic, replayed
# here elementwise over an *array* of seeds: one vectorized pass computes
# the seed state for a whole grid of streams. tests/test_units_rng_errors.py
# pins word-for-word equality against numpy's own SeedSequence.

_XSHIFT = np.uint32(16)
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)

#: Below this many streams the fixed numpy dispatch overhead of the
#: vectorized pass outweighs the per-seed saving; the lazy scalar path
#: (plain ``PCG64(seed)`` on first draw) wins.
MATERIALIZE_THRESHOLD = 16


def _bulk_state_words(seeds: Sequence[int]) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for many seeds at once.

    Returns an ``(n, 4)`` uint64 array; row *i* equals numpy's output for
    ``seeds[i]``. A 64-bit seed coerces to one entropy word when it fits
    in 32 bits and two words otherwise; seed 0 coerces to *zero* words —
    all three cases collapse onto the same masked computation because the
    pool is padded with ``hashmix(0)`` exactly where entropy words are
    absent, and the absent words are zero.
    """
    seed_array = np.asarray([int(s) & _MASK64 for s in seeds], dtype=np.uint64)
    n = len(seed_array)
    low = (seed_array & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    high = (seed_array >> np.uint64(32)).astype(np.uint32)
    pool = np.zeros((n, 4), dtype=np.uint32)
    with np.errstate(over="ignore"):

        def hashmix(value: np.ndarray, hash_const: np.ndarray):
            value = value ^ hash_const
            hash_const = hash_const * _MULT_A
            value = value * hash_const
            value ^= value >> _XSHIFT
            return value, hash_const

        def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            result = x * _MIX_MULT_L - y * _MIX_MULT_R
            result ^= result >> _XSHIFT
            return result

        hash_const = np.full(n, _INIT_A, dtype=np.uint32)
        zero = np.zeros(n, dtype=np.uint32)
        pool[:, 0], hash_const = hashmix(low, hash_const)
        pool[:, 1], hash_const = hashmix(high, hash_const)
        pool[:, 2], hash_const = hashmix(zero, hash_const)
        pool[:, 3], hash_const = hashmix(zero, hash_const)
        for i_src in range(4):
            for i_dst in range(4):
                if i_src != i_dst:
                    mixed, hash_const = hashmix(pool[:, i_src], hash_const)
                    pool[:, i_dst] = mix(pool[:, i_dst], mixed)
        hash_const = np.full(n, _INIT_B, dtype=np.uint32)
        words = np.zeros((n, 8), dtype=np.uint32)
        for i_dst in range(8):
            data = pool[:, i_dst % 4] ^ hash_const
            hash_const = hash_const * _MULT_B
            data = data * hash_const
            data ^= data >> _XSHIFT
            words[:, i_dst] = data
    return words.view(np.uint64)


try:  # numpy >= 1.17; gate defensively so a missing seam degrades to lazy
    from numpy.random.bit_generator import ISeedSequence as _ISeedSequence
except ImportError:  # pragma: no cover - exercised only on exotic numpy builds
    _ISeedSequence = None


class _PrecomputedSeedSequence:
    """A stand-in SeedSequence carrying pre-generated state words.

    ``PCG64(seed_sequence)`` only ever calls ``generate_state(4, uint64)``
    on it; handing back the words computed by :func:`_bulk_state_words`
    skips the per-stream Cython SeedSequence entirely while producing the
    identical bit-generator state.
    """

    __slots__ = ("_words",)

    def __init__(self, words: np.ndarray) -> None:
        self._words = words

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        if n_words != 4 or np.dtype(dtype) != np.dtype(np.uint64):
            raise ValueError(
                "precomputed seed state only covers PCG64's (4, uint64) request"
            )
        return np.asarray(self._words, dtype=np.uint64)


if _ISeedSequence is not None:
    _ISeedSequence.register(_PrecomputedSeedSequence)


def materialize_streams(streams: Sequence["RngStream"]) -> None:
    """Precompute the PCG64 seed state for a batch of streams, vectorized.

    Call this on streams that *will all be drawn from* (a lowered grid's
    cell streams, a workload's inner sample streams): each stream's first
    draw then builds its generator from the precomputed words instead of
    paying the full per-stream SeedSequence hash. Streams whose generator
    already exists are left untouched. Below :data:`MATERIALIZE_THRESHOLD`
    streams (or when the fast seam is unavailable) this is a no-op and the
    lazy scalar path applies — draws are bit-identical either way.
    """
    pending = [
        s for s in streams if s._generator is None and s._state_words is None
    ]
    if _ISeedSequence is None or len(pending) < MATERIALIZE_THRESHOLD:
        return
    words = _bulk_state_words([s.seed for s in pending])
    for index, stream in enumerate(pending):
        stream._state_words = words[index]


class RngStream:
    """A named, hierarchical deterministic random stream.

    Wraps :class:`numpy.random.Generator` and adds:

    * ``child(name)`` — derive an independent stream for a sub-component;
    * convenience distributions used by the performance models
      (log-normal service times, bounded Gaussian noise).

    The generator is created lazily on first draw (derivation-only interior
    nodes of the seed tree never build one), either from the plain seed or
    from state words precomputed by :func:`materialize_streams` — the
    resulting draw sequence is identical in every case.
    """

    __slots__ = ("seed", "path", "_generator", "_state_words")

    def __init__(self, seed: int, path: str = "root") -> None:
        self.seed = int(seed) & _MASK64
        self.path = path
        self._generator: np.random.Generator | None = None
        self._state_words: np.ndarray | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(path={self.path!r}, seed={self.seed:#x})"

    def __getstate__(self) -> dict:
        # __slots__ classes have no __dict__; ship the slots explicitly.
        # A constructed generator travels with its exact draw position, so
        # a pickled mid-use stream resumes identically on the other side.
        return {
            "seed": self.seed,
            "path": self.path,
            "_generator": self._generator,
            "_state_words": self._state_words,
        }

    def __setstate__(self, state: dict) -> None:
        self.seed = state["seed"]
        self.path = state["path"]
        self._generator = state["_generator"]
        self._state_words = state["_state_words"]

    # --- stream derivation -------------------------------------------------

    def child(self, name: str) -> "RngStream":
        """Return an independent child stream identified by ``name``."""
        child_path = f"{self.path}/{name}"
        return RngStream(derive_seed(self.seed, child_path), child_path)

    def children(self, names: Iterable[str]) -> list["RngStream"]:
        """Derive one child stream per name, in order (batched hashing)."""
        names = list(names)
        paths = [f"{self.path}/{name}" for name in names]
        return [
            RngStream(seed, path)
            for seed, path in zip(derive_seeds(self.seed, paths), paths)
        ]

    # --- raw draws ----------------------------------------------------------

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (built on first use)."""
        if self._generator is None:
            if self._state_words is not None:
                bit_generator = np.random.PCG64(
                    _PrecomputedSeedSequence(self._state_words)
                )
            else:
                bit_generator = np.random.PCG64(self.seed)
            self._generator = np.random.Generator(bit_generator)
        return self._generator

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.generator.exponential(mean))

    def choice(self, options: list, probabilities: list[float] | None = None):
        """Pick one element, optionally with explicit probabilities."""
        index = self.generator.choice(len(options), p=probabilities)
        return options[int(index)]

    # --- modelling distributions --------------------------------------------

    def gaussian_factor(self, relative_std: float, *, clip: float = 4.0) -> float:
        """A multiplicative noise factor ``~ N(1, relative_std)``.

        The draw is clipped to ``1 +/- clip * relative_std`` and floored at a
        small positive value so downstream durations stay physical.
        """
        if relative_std <= 0.0:
            return 1.0
        draw = self.generator.normal(1.0, relative_std)
        lower = max(1e-3, 1.0 - clip * relative_std)
        upper = 1.0 + clip * relative_std
        return float(min(max(draw, lower), upper))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative factor from a mean-1 log-normal distribution.

        Log-normal multiplicative noise is the standard model for service
        times in systems measurement: strictly positive and right-skewed
        (occasional slow runs), matching the long upper tails visible in the
        paper's startup-time CDFs.
        """
        if sigma <= 0.0:
            return 1.0
        mu = -0.5 * sigma * sigma  # mean of exp(N(mu, sigma)) == 1
        return float(self.generator.lognormal(mu, sigma))

    def pareto_tail(self, probability: float, scale: float, alpha: float = 2.5) -> float:
        """Occasionally return a heavy-tail additive delay, else 0.

        Models rare hiccups (host scheduling, cache-drop interference) that
        produce the outlier dots in the paper's figures.
        """
        if probability <= 0.0 or self.uniform() >= probability:
            return 0.0
        return float(scale * (1.0 + self.generator.pareto(alpha)))

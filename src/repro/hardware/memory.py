"""DRAM subsystem: sustained bandwidth and loaded latency.

Combines the cache hierarchy and TLB models into the two observable
quantities the paper's memory benchmarks report:

* **random-access latency vs. buffer size** (tinymembench, Figure 6) —
  cache-level blend + TLB overhead;
* **sequential copy bandwidth** (tinymembench copy / SSE2 copy, Figure 7,
  and STREAM COPY, Figure 8) — prefetch-friendly streaming limited by
  sustained DRAM bandwidth, with an optional instruction-mix factor for
  SSE2 non-temporal stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.cache import CacheHierarchy
from repro.hardware.tlb import TlbModel
from repro.units import GIB

__all__ = ["MemorySubsystem"]


@dataclass
class MemorySubsystem:
    """Memory performance model for one NUMA node of the testbed.

    ``single_thread_copy_bw`` is the sustained single-threaded copy rate a
    benchmark like tinymembench observes (~11 GiB/s on Zen2); STREAM with
    its larger 2.2 GiB working set and non-temporal stores sustains a bit
    more (``stream_copy_bw``).
    """

    total_bytes: int = 256 * GIB
    caches: CacheHierarchy = field(default_factory=CacheHierarchy)
    tlb: TlbModel = field(default_factory=TlbModel)
    single_thread_copy_bw: float = 11.2 * GIB
    sse2_copy_bw: float = 11.8 * GIB
    stream_copy_bw: float = 18.6 * GIB

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ConfigurationError("memory size must be positive")
        if min(self.single_thread_copy_bw, self.sse2_copy_bw, self.stream_copy_bw) <= 0:
            raise ConfigurationError("bandwidths must be positive")

    # --- latency --------------------------------------------------------------

    def random_access_latency(
        self,
        buffer_bytes: int,
        *,
        huge_pages: bool = False,
        nested_paging: bool = False,
    ) -> float:
        """Expected latency of one dependent random access in the buffer."""
        cache_part = self.caches.random_access_latency(buffer_bytes)
        tlb_part = self.tlb.expected_overhead(
            buffer_bytes, huge_pages=huge_pages, nested=nested_paging
        )
        return cache_part + tlb_part

    def extra_latency_over_l1(
        self,
        buffer_bytes: int,
        *,
        huge_pages: bool = False,
        nested_paging: bool = False,
    ) -> float:
        """The Figure 6 y-axis: latency above the L1 floor."""
        return max(
            0.0,
            self.random_access_latency(
                buffer_bytes, huge_pages=huge_pages, nested_paging=nested_paging
            )
            - self.caches.l1_latency_s,
        )

    # --- bandwidth --------------------------------------------------------------

    def copy_bandwidth(self, *, sse2: bool = False) -> float:
        """Single-thread sequential copy bandwidth (tinymembench)."""
        return self.sse2_copy_bw if sse2 else self.single_thread_copy_bw

    def stream_bandwidth(self) -> float:
        """STREAM COPY sustained bandwidth."""
        return self.stream_copy_bw

    def copy_time(self, total_bytes: float, *, sse2: bool = False) -> float:
        """Seconds to copy ``total_bytes`` sequentially, one thread."""
        if total_bytes < 0:
            raise ConfigurationError("copy size must be non-negative")
        return total_bytes / self.copy_bandwidth(sse2=sse2)

"""Machine topology: the assembled testbed.

``paper_testbed()`` builds the dual-socket AMD EPYC2 7542 host used for
every experiment in the paper (Section 3): 2 x 32 cores / 64 threads,
256 GiB RAM, a dedicated fast NVMe SSD, and a 40 GbE-class NIC, running
Ubuntu Server 20.04 LTS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuModel
from repro.hardware.memory import MemorySubsystem
from repro.hardware.nic import NicModel
from repro.hardware.storage import NvmeDevice
from repro.units import GIB

__all__ = ["Machine", "paper_testbed"]


@dataclass
class Machine:
    """A complete host machine."""

    hostname: str = "epyc-testbed"
    sockets: int = 2
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: MemorySubsystem = field(default_factory=MemorySubsystem)
    nvme: NvmeDevice = field(default_factory=NvmeDevice)
    nic: NicModel = field(default_factory=NicModel)
    os_name: str = "Ubuntu Server 20.04 LTS"
    kernel_version: str = "5.4.0"

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigurationError("machine needs at least one socket")

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.sockets * self.cpu.physical_cores

    @property
    def total_threads(self) -> int:
        """Hardware threads across all sockets."""
        return self.sockets * self.cpu.hardware_threads

    @property
    def total_memory_bytes(self) -> int:
        """Installed RAM."""
        return self.memory.total_bytes

    def describe(self) -> str:
        """Human-readable one-line summary (README/report header)."""
        return (
            f"{self.hostname}: {self.sockets}x {self.cpu.name} "
            f"({self.total_cores} cores / {self.total_threads} threads), "
            f"{self.total_memory_bytes // GIB} GiB RAM, {self.nvme.name} NVMe, "
            f"{self.os_name}"
        )


def paper_testbed() -> Machine:
    """The exact machine configuration of the paper's evaluation."""
    return Machine(
        hostname="epyc2-7542",
        sockets=2,
        cpu=CpuModel(),
        memory=MemorySubsystem(total_bytes=256 * GIB),
        nvme=NvmeDevice(),
        nic=NicModel(),
    )

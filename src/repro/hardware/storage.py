"""NVMe block device model.

The testbed's "dedicated fast NVMe SSD". fio drives it with ``libaio`` and
``direct=1`` so the figures reflect raw device behaviour plus whatever the
isolation platform's block path adds on top. The device model exposes:

* sustained sequential throughput for large (128 KiB) requests, asymmetric
  between read and write;
* 4 KiB random-read service latency with realistic dispersion;
* a simple queue-depth throughput curve so the libaio in-flight window
  matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.units import GB, KIB, us

__all__ = ["NvmeDevice"]


@dataclass(frozen=True)
class NvmeDevice:
    """A datacenter NVMe SSD (PCIe 3 x4 class)."""

    name: str = "nvme0n1"
    seq_read_bw: float = 3.20 * GB
    seq_write_bw: float = 2.45 * GB
    rand_read_latency_s: float = us(84.0)
    rand_read_latency_std: float = 0.08  # relative
    max_queue_depth: int = 1024
    per_request_overhead_s: float = us(6.0)

    def __post_init__(self) -> None:
        if self.seq_read_bw <= 0 or self.seq_write_bw <= 0:
            raise ConfigurationError("device bandwidth must be positive")
        if self.rand_read_latency_s <= 0:
            raise ConfigurationError("device latency must be positive")

    # --- throughput -------------------------------------------------------------

    def queue_depth_scaling(self, queue_depth: int) -> float:
        """Fraction of peak throughput reached at a given queue depth.

        NVMe devices need concurrency to hit peak bandwidth; the curve
        saturates quickly for the large-block sequential workloads fio uses.
        """
        if queue_depth < 1:
            raise ConfigurationError("queue depth must be >= 1")
        depth = min(queue_depth, self.max_queue_depth)
        return depth / (depth + 1.5)

    def sequential_bandwidth(self, *, write: bool, queue_depth: int = 32) -> float:
        """Sustained bytes/second for a 128 KiB-block sequential stream."""
        peak = self.seq_write_bw if write else self.seq_read_bw
        return peak * self.queue_depth_scaling(queue_depth)

    def transfer_time(
        self, total_bytes: float, *, write: bool, queue_depth: int = 32
    ) -> float:
        """Seconds to stream ``total_bytes`` sequentially."""
        if total_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        return total_bytes / self.sequential_bandwidth(write=write, queue_depth=queue_depth)

    # --- latency -----------------------------------------------------------------

    def random_read_latency(self, rng: RngStream | None = None, block_bytes: int = 4 * KIB) -> float:
        """One 4 KiB random-read completion latency at the device.

        Adds the transfer time for the requested block on top of the
        flash-array access time; dispersion follows a clipped Gaussian.
        """
        if block_bytes <= 0:
            raise ConfigurationError("block size must be positive")
        base = self.rand_read_latency_s + block_bytes / self.seq_read_bw
        noise = rng.gaussian_factor(self.rand_read_latency_std) if rng else 1.0
        return base * noise + self.per_request_overhead_s

"""TLB model with 4 KiB and 2 MiB (hugepage) support.

Figure 6 of the paper attributes the latency growth with buffer size to
"an increasing proportion of TLB cache misses", and Section 3.2 reports a
~30 % access-latency reduction with hugepages on large buffers. Those are
the two behaviours this model produces.

Virtualized guests additionally pay *nested* page walks: with two-
dimensional paging (AMD NPT / Intel EPT) a TLB miss walks both the guest
and the host page tables, up to quadratically many memory references. The
``nested`` flag scales the walk cost accordingly; the per-platform memory
models in :mod:`repro.platforms` decide whether and how strongly it
applies (e.g. Kata's NVDIMM direct mapping avoids most of it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import HUGE_PAGE_SIZE, PAGE_SIZE, ns

__all__ = ["TlbModel"]


@dataclass(frozen=True)
class TlbModel:
    """Two-level TLB as found on EPYC2: L1 64 entries, L2 1536 entries.

    The model treats TLB reach as a coverage problem: a uniformly random
    access in a buffer larger than the TLB's reach misses with probability
    ``1 - reach/buffer``; L2 TLB hits cost a small refill penalty while full
    misses cost a page walk.
    """

    l1_entries: int = 64
    l2_entries: int = 1536
    l2_hit_penalty_s: float = ns(7.0)
    page_walk_s: float = ns(38.0)
    nested_walk_multiplier: float = 1.9  # 2D walk, partially hidden by walk caches

    def __post_init__(self) -> None:
        if self.l1_entries <= 0 or self.l2_entries <= self.l1_entries:
            raise ConfigurationError("need 0 < l1_entries < l2_entries")

    def reach_bytes(self, level_entries: int, huge_pages: bool) -> int:
        """Address range covered by ``level_entries`` TLB entries."""
        page = HUGE_PAGE_SIZE if huge_pages else PAGE_SIZE
        return level_entries * page

    def miss_fraction(self, buffer_bytes: int, reach: int) -> float:
        """Probability a random access falls outside ``reach`` coverage."""
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer size must be positive")
        if buffer_bytes <= reach:
            return 0.0
        return 1.0 - reach / buffer_bytes

    def expected_overhead(
        self,
        buffer_bytes: int,
        *,
        huge_pages: bool = False,
        nested: bool = False,
    ) -> float:
        """Expected per-access TLB cost for a random access in the buffer.

        Composed of the L1-miss/L2-hit refill penalty plus the full-walk
        cost for accesses beyond L2 reach, optionally scaled for nested
        (two-dimensional) paging.
        """
        l1_reach = self.reach_bytes(self.l1_entries, huge_pages)
        l2_reach = self.reach_bytes(self.l2_entries, huge_pages)
        l1_miss = self.miss_fraction(buffer_bytes, l1_reach)
        l2_miss = self.miss_fraction(buffer_bytes, l2_reach)
        walk = self.page_walk_s * (self.nested_walk_multiplier if nested else 1.0)
        l2_hit_only = max(0.0, l1_miss - l2_miss)
        return l2_hit_only * self.l2_hit_penalty_s + l2_miss * walk

    def hugepage_speedup(self, buffer_bytes: int, *, nested: bool = False) -> float:
        """Relative reduction in TLB overhead when switching to hugepages.

        Returns a value in [0, 1]; the paper reports ~0.3 effective latency
        reduction on large buffers once cache latency is included.
        """
        base = self.expected_overhead(buffer_bytes, huge_pages=False, nested=nested)
        if base == 0.0:
            return 0.0
        huge = self.expected_overhead(buffer_bytes, huge_pages=True, nested=nested)
        return 1.0 - huge / base

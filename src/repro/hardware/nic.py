"""Network interface model.

iperf3 against the native host reaches 37.28 Gbit/s in the paper (host as
server, client on a directly attached device — effectively a 40 GbE-class
path). The model captures the two quantities the network benchmarks need:

* achievable TCP goodput given per-packet CPU costs along the datapath
  (throughput is CPU-limited once virtualization layers add per-packet
  work — this is what separates bridges from TAP+virtio from Netstack);
* base one-way latency for request/response (netperf) workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbit_per_s, us

__all__ = ["NicModel"]


@dataclass(frozen=True)
class NicModel:
    """A 40 GbE-class NIC with a fixed MTU datapath."""

    name: str = "40gbe0"
    line_rate: float = gbit_per_s(37.4)
    mtu_bytes: int = 1500
    base_packet_cost_s: float = 0.28e-6  # host-stack per-packet CPU cost
    base_rtt_s: float = us(28.0)

    def __post_init__(self) -> None:
        if self.line_rate <= 0:
            raise ConfigurationError("line rate must be positive")
        if self.mtu_bytes < 576:
            raise ConfigurationError("MTU unrealistically small")

    def packets_for(self, total_bytes: float) -> float:
        """Number of MTU-sized segments needed for a byte stream."""
        if total_bytes < 0:
            raise ConfigurationError("byte count must be non-negative")
        return total_bytes / self.mtu_bytes

    def achievable_throughput(self, per_packet_cost_s: float) -> float:
        """Goodput in bytes/second given the full datapath per-packet cost.

        The stream is limited by whichever is slower: the wire, or the CPU
        processing ``mtu`` bytes every ``per_packet_cost_s`` seconds.
        """
        if per_packet_cost_s < 0:
            raise ConfigurationError("per-packet cost must be non-negative")
        total_cost = self.base_packet_cost_s + per_packet_cost_s
        cpu_limit = self.mtu_bytes / total_cost if total_cost > 0 else float("inf")
        return min(self.line_rate, cpu_limit)

    def request_response_latency(self, extra_per_hop_s: float, hops: int = 2) -> float:
        """One request/response round-trip with per-hop datapath overhead."""
        if hops < 1:
            raise ConfigurationError("need at least one hop")
        return self.base_rtt_s + extra_per_hop_s * hops

"""Hardware models for the simulated testbed.

The paper's experiments ran on a dual-socket AMD EPYC2 7542 machine
(2 x 32 cores / 64 threads, 256 GiB DDR4, fast NVMe SSD). This package
models the components of that machine that the benchmarks exercise:

* :mod:`repro.hardware.cpu`      — cores, SMT, IPC, SIMD execution
* :mod:`repro.hardware.cache`    — L1/L2/L3 cache hierarchy
* :mod:`repro.hardware.tlb`      — TLB reach and page-walk costs (4 KiB & 2 MiB pages)
* :mod:`repro.hardware.memory`   — DRAM bandwidth and latency
* :mod:`repro.hardware.storage`  — the NVMe block device
* :mod:`repro.hardware.nic`      — the network interface
* :mod:`repro.hardware.topology` — the assembled machine (``PAPER_TESTBED``)
"""

from repro.hardware.cpu import CpuModel
from repro.hardware.cache import CacheHierarchy, CacheLevel
from repro.hardware.tlb import TlbModel
from repro.hardware.memory import MemorySubsystem
from repro.hardware.storage import NvmeDevice
from repro.hardware.nic import NicModel
from repro.hardware.topology import Machine, paper_testbed

__all__ = [
    "CpuModel",
    "CacheHierarchy",
    "CacheLevel",
    "TlbModel",
    "MemorySubsystem",
    "NvmeDevice",
    "NicModel",
    "Machine",
    "paper_testbed",
]

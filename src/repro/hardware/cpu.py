"""CPU execution model.

Models the compute-side quantities the paper's CPU benchmarks depend on:

* scalar integer throughput (sysbench prime verification), which is
  identical across all platforms because guest code executes natively under
  hardware-assisted virtualization (Finding 1, first half);
* multi-threaded SIMD-heavy throughput (ffmpeg H.264→H.265 re-encode),
  where platform differences come from *thread-scheduling efficiency* and
  SIMD state-handling overhead, not raw instruction speed (Finding 1,
  second half).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GHZ

__all__ = ["CpuModel"]


@dataclass(frozen=True)
class CpuModel:
    """A socketed x86-64 CPU.

    Parameters mirror the AMD EPYC2 7542: 32 physical cores with SMT-2,
    2.9 GHz base clock, 256-bit SIMD datapath.
    """

    name: str = "AMD EPYC 7542"
    physical_cores: int = 32
    threads_per_core: int = 2
    base_frequency_hz: float = 2.9 * GHZ
    scalar_ipc: float = 3.0
    simd_lanes_64bit: int = 4  # 256-bit AVX2 datapath
    smt_throughput_factor: float = 1.25  # 2 SMT threads ~ 1.25x one core

    def __post_init__(self) -> None:
        if self.physical_cores < 1:
            raise ConfigurationError("CPU needs at least one core")
        if self.base_frequency_hz <= 0:
            raise ConfigurationError("CPU frequency must be positive")

    @property
    def hardware_threads(self) -> int:
        """Logical CPUs exposed to the OS."""
        return self.physical_cores * self.threads_per_core

    # --- throughput ---------------------------------------------------------

    def scalar_ops_per_second(self, threads: int = 1) -> float:
        """Aggregate scalar ops/s for ``threads`` runnable threads."""
        return self.base_frequency_hz * self.scalar_ipc * self.effective_cores(threads)

    def simd_ops_per_second(self, threads: int = 1) -> float:
        """Aggregate 64-bit-lane SIMD ops/s for ``threads`` threads."""
        return (
            self.base_frequency_hz
            * self.simd_lanes_64bit
            * self.effective_cores(threads)
        )

    def effective_cores(self, threads: int) -> float:
        """Translate a thread count into effective full-core equivalents.

        Up to the physical core count each thread is one core; beyond that,
        SMT siblings add only the SMT throughput bonus.
        """
        if threads < 1:
            raise ConfigurationError(f"thread count must be >= 1, got {threads}")
        threads = min(threads, self.hardware_threads)
        if threads <= self.physical_cores:
            return float(threads)
        smt_pairs = threads - self.physical_cores
        singles = self.physical_cores - smt_pairs
        return singles + smt_pairs * self.smt_throughput_factor

    # --- timing -------------------------------------------------------------

    def scalar_time(self, operations: float, threads: int = 1) -> float:
        """Seconds to retire ``operations`` scalar ops on ``threads`` threads."""
        return operations / self.scalar_ops_per_second(threads)

    def simd_time(self, operations: float, threads: int = 1) -> float:
        """Seconds to retire ``operations`` SIMD lane-ops on ``threads`` threads."""
        return operations / self.simd_ops_per_second(threads)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core cycles to seconds at base frequency."""
        return cycles / self.base_frequency_hz

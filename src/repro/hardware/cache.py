"""Cache hierarchy model.

Produces the *extra access latency on top of L1* for a random access inside
a working set of a given size — exactly the quantity Figure 6 of the paper
plots (tinymembench "dual random read" style). The model blends per-level
latencies by the probability that a uniformly random access inside the
buffer hits each level, assuming LRU-like inclusion (a buffer larger than a
level spills the excess to the next level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import KIB, MIB, ns

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level: capacity and load-to-use latency."""

    name: str
    capacity_bytes: int
    latency_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.latency_s < 0:
            raise ConfigurationError(f"{self.name}: latency must be non-negative")


class CacheHierarchy:
    """An inclusive multi-level cache in front of DRAM.

    Default parameters approximate one EPYC2 7542 CCX view:
    32 KiB L1D @ ~1.4 ns, 512 KiB L2 @ ~4.3 ns, 16 MiB L3 slice @ ~13.4 ns,
    DRAM @ ~ 105 ns loaded latency.
    """

    def __init__(
        self,
        levels: list[CacheLevel] | None = None,
        dram_latency_s: float = ns(105.0),
    ) -> None:
        if levels is None:
            levels = [
                CacheLevel("L1d", 32 * KIB, ns(1.4)),
                CacheLevel("L2", 512 * KIB, ns(4.3)),
                CacheLevel("L3", 16 * MIB, ns(13.4)),
            ]
        if not levels:
            raise ConfigurationError("cache hierarchy needs at least one level")
        for smaller, larger in zip(levels, levels[1:]):
            if smaller.capacity_bytes >= larger.capacity_bytes:
                raise ConfigurationError(
                    f"cache levels must grow: {smaller.name} >= {larger.name}"
                )
        if dram_latency_s <= levels[-1].latency_s:
            raise ConfigurationError("DRAM must be slower than the last cache level")
        self.levels = list(levels)
        self.dram_latency_s = dram_latency_s

    @property
    def l1_latency_s(self) -> float:
        """Latency of the first level (the baseline Figure 6 subtracts)."""
        return self.levels[0].latency_s

    def hit_fractions(self, buffer_bytes: int) -> list[tuple[str, float, float]]:
        """Probability mass of a random access landing in each level.

        Returns ``(level_name, fraction, latency)`` tuples including the
        final ``DRAM`` row; fractions sum to 1.
        """
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer size must be positive")
        rows: list[tuple[str, float, float]] = []
        covered = 0
        for level in self.levels:
            if buffer_bytes <= covered:
                break
            span = min(level.capacity_bytes, buffer_bytes) - covered
            if span > 0:
                rows.append((level.name, span / buffer_bytes, level.latency_s))
                covered += span
        if buffer_bytes > covered:
            rows.append(("DRAM", (buffer_bytes - covered) / buffer_bytes, self.dram_latency_s))
        return rows

    def random_access_latency(self, buffer_bytes: int) -> float:
        """Expected latency of one random access within ``buffer_bytes``."""
        return sum(fraction * latency for _, fraction, latency in self.hit_fractions(buffer_bytes))

    def extra_latency_over_l1(self, buffer_bytes: int) -> float:
        """Expected latency above the L1 floor (the Figure 6 y-axis)."""
        return max(0.0, self.random_access_latency(buffer_bytes) - self.l1_latency_s)

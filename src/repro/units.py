"""Unit helpers and conversions used throughout the library.

The simulation keeps a single canonical unit per dimension to avoid the
classic source of bugs in performance models:

* time        — **seconds** (floats)
* data size   — **bytes** (ints where possible)
* bandwidth   — **bytes per second**
* frequency   — **hertz**

This module provides named constants and conversion helpers so call sites
read like the quantities in the paper (``128 * KIB``, ``gbit_per_s(37.28)``).
"""

from __future__ import annotations

# --- data sizes -----------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

PAGE_SIZE = 4 * KIB
HUGE_PAGE_SIZE = 2 * MIB

# --- time -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
NSEC = 1e-9
MINUTE = 60.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * 1e9


def ms(value: float) -> float:
    """Express a duration given in milliseconds in canonical seconds."""
    return value * MSEC


def us(value: float) -> float:
    """Express a duration given in microseconds in canonical seconds."""
    return value * USEC


def ns(value: float) -> float:
    """Express a duration given in nanoseconds in canonical seconds."""
    return value * NSEC


# --- bandwidth ------------------------------------------------------------


def gbit_per_s(value: float) -> float:
    """Convert gigabits per second to canonical bytes per second."""
    return value * 1e9 / 8.0


def mbit_per_s(value: float) -> float:
    """Convert megabits per second to canonical bytes per second."""
    return value * 1e6 / 8.0


def to_gbit_per_s(bytes_per_second: float) -> float:
    """Convert canonical bytes per second to gigabits per second."""
    return bytes_per_second * 8.0 / 1e9


def mib_per_s(value: float) -> float:
    """Convert MiB/s to canonical bytes per second."""
    return value * MIB


def to_mib_per_s(bytes_per_second: float) -> float:
    """Convert canonical bytes per second to MiB/s."""
    return bytes_per_second / MIB


def to_mb_per_s(bytes_per_second: float) -> float:
    """Convert canonical bytes per second to decimal MB/s (fio convention)."""
    return bytes_per_second / MB


# --- frequency ------------------------------------------------------------

GHZ = 1e9
MHZ = 1e6


def pretty_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``2.2 GiB``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def pretty_duration(seconds: float) -> str:
    """Render a duration with an appropriate sub-second suffix."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.2f} ms"
    if seconds >= USEC:
        return f"{seconds / USEC:.2f} us"
    return f"{seconds / NSEC:.1f} ns"

"""Lightweight structured trace log for simulations.

Components append :class:`TraceRecord` entries (timestamp, source, event
name, payload). Tests and the ftrace model consume them; production runs
can disable collection entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "SimTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event emitted by a simulated component."""

    time: float
    source: str
    event: str
    detail: dict[str, Any] = field(default_factory=dict)


class SimTrace:
    """An append-only trace with cheap filtering helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def emit(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Record one event (no-op when collection is disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, source, event, detail))

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def filter(self, *, source: str | None = None, event: str | None = None) -> list[TraceRecord]:
        """Records matching the given source and/or event name."""
        return [
            record
            for record in self._records
            if (source is None or record.source == source)
            and (event is None or record.event == event)
        ]

    def count(self, *, source: str | None = None, event: str | None = None) -> int:
        """Number of records matching the filter."""
        return len(self.filter(source=source, event=event))

"""The discrete-event simulator and its process model.

A *process* is a Python generator. It communicates with the simulator by
yielding command objects:

* ``Timeout(delay)``            — sleep for ``delay`` seconds of virtual time;
* ``Wait(event)``               — suspend until the event triggers; the
  ``yield`` expression evaluates to the event's payload;
* another :class:`Process`      — wait for a child process to finish; the
  ``yield`` evaluates to the child's return value;
* an :class:`~repro.simcore.event.Event` directly (shorthand for ``Wait``).

The simulator is single-threaded and fully deterministic: simultaneous
events run in scheduling order.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.simcore.event import Event, EventQueue

__all__ = ["Timeout", "Wait", "Process", "Simulator"]


class Timeout:
    """Command: suspend the yielding process for ``delay`` virtual seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value


class Wait:
    """Command: suspend the yielding process until ``event`` triggers."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Process:
    """A running generator coroutine inside the simulator.

    ``Process`` is itself awaitable by other processes: waiting on it
    completes when the generator returns (its ``StopIteration`` value is the
    payload) or re-raises the generator's unhandled exception.
    """

    __slots__ = ("simulator", "generator", "name", "done_event", "_started")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        self.simulator = simulator
        self.generator = generator
        self.name = name
        self.done_event = Event(f"done:{name}")
        self._started = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done_event.triggered else "running"
        return f"Process({self.name!r}, {state})"

    @property
    def finished(self) -> bool:
        """Whether the process body has returned or raised."""
        return self.done_event.triggered

    @property
    def result(self) -> Any:
        """The generator's return value (raises if the process failed)."""
        if not self.done_event.triggered:
            raise SimulationError(f"process {self.name!r} still running")
        if not self.done_event.ok:
            raise self.done_event._value  # noqa: SLF001 - deliberate re-raise
        return self.done_event.value

    # --- stepping (driven by the Simulator) ---------------------------------

    def _resume(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        try:
            if error is not None:
                command = self.generator.throw(error)
            else:
                command = self.generator.send(value)
        except StopIteration as stop:
            self.done_event.succeed(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - propagate via event
            self.done_event.fail(exc)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        simulator = self.simulator
        if isinstance(command, Timeout):
            simulator._queue.push(
                simulator.now + command.delay, lambda: self._resume(command.value)
            )
        elif isinstance(command, Wait):
            self._wait_on(command.event)
        elif isinstance(command, Event):
            self._wait_on(command)
        elif isinstance(command, Process):
            self._wait_on(command.done_event)
        else:
            self._resume(
                error=SimulationError(
                    f"process {self.name!r} yielded an unknown command: {command!r}"
                )
            )

    def _wait_on(self, event: Event) -> None:
        def _on_trigger(evt: Event) -> None:
            # Resume on the simulator agenda (same timestamp) rather than
            # synchronously, to keep resumption order deterministic.
            if evt.ok:
                self.simulator._queue.push(self.simulator.now, lambda: self._resume(evt.value))
            else:
                self.simulator._queue.push(
                    self.simulator.now, lambda: self._resume(error=evt.value)
                )

        if event.triggered:
            _on_trigger(event)
        else:
            event.callbacks.append(_on_trigger)


class Simulator:
    """Owns the virtual clock and the event agenda.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(boot_sequence(vm), name="boot")
        sim.run()
        elapsed = sim.now
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self._spawn_count = 0

    # --- process management --------------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it at the current time."""
        self._spawn_count += 1
        process = Process(self, generator, name or f"proc-{self._spawn_count}")
        self._queue.push(self.now, lambda: process._resume())
        return process

    def event(self, name: str = "") -> Event:
        """Create a fresh event bound to no particular time."""
        return Event(name)

    def schedule(self, delay: float, callback) -> None:
        """Run a bare callback after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._queue.push(self.now + delay, callback)

    # --- execution ------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the agenda drains (or virtual time ``until``).

        Returns the final virtual time. ``max_events`` is a safety valve
        against accidental infinite event loops in model code.
        """
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            entry = self._queue.pop()
            if entry is None:
                break
            if entry.time < self.now - 1e-15:
                raise SimulationError(
                    f"time went backwards: {entry.time} < {self.now}"
                )
            self.now = max(self.now, entry.time)
            entry.callback()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; possible infinite loop"
                )
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return its result."""
        process = self.spawn(generator, name)
        self.run()
        if not process.finished:
            raise SimulationError(
                f"agenda drained but process {process.name!r} never finished "
                "(deadlock: waiting on an event nobody triggers)"
            )
        return process.result

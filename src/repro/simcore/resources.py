"""Shared-resource primitives for the simulation.

* :class:`Resource` — a counting semaphore with FIFO queueing; models CPU
  cores, virtqueue depth, the single QEMU main loop, MySQL worker slots…
* :class:`Store` — an unbounded FIFO message channel; models ttRPC/9p
  request queues and the packet handoff between a TAP device and a guest.
* :class:`TokenBucket` — a rate limiter over virtual time; models bandwidth
  caps (NIC line rate, NVMe throughput) without per-byte events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.errors import SimulationError
from repro.simcore.engine import Simulator, Timeout, Wait
from repro.simcore.event import Event

__all__ = ["Resource", "Store", "TokenBucket"]


class Resource:
    """Counting semaphore with FIFO fairness.

    Usage inside a process::

        yield from resource.acquire()
        try:
            yield Timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, simulator: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        self.total_acquisitions = 0
        self.total_wait_time = 0.0

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        """Processes currently blocked waiting for a unit."""
        return len(self._waiters)

    def acquire(self) -> Generator:
        """Generator: obtain one unit, blocking in FIFO order if needed."""
        started = self.simulator.now
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
        else:
            gate = Event(f"{self.name}:acquire")
            self._waiters.append(gate)
            yield Wait(gate)
        self.total_acquisitions += 1
        self.total_wait_time += self.simulator.now - started
        return None

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter: in_use stays constant.
            gate = self._waiters.popleft()
            gate.succeed()
        else:
            self.in_use -= 1


class Store:
    """Unbounded FIFO channel between producer and consumer processes."""

    def __init__(self, simulator: Simulator, name: str = "store") -> None:
        self.simulator = simulator
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest blocked getter if any."""
        self.total_put += 1
        if self._getters:
            gate = self._getters.popleft()
            gate.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """Generator: take the oldest item, blocking until one is available."""
        if self._items:
            return self._items.popleft()
        gate = Event(f"{self.name}:get")
        self._getters.append(gate)
        item = yield Wait(gate)
        return item


class TokenBucket:
    """A byte-rate limiter over virtual time.

    Rather than generating one event per byte, a transfer of ``amount``
    bytes reserves the bucket's timeline: the call returns the *delay* the
    caller must sleep so that aggregate throughput never exceeds
    ``rate`` bytes/second. Concurrent callers serialize, which is exactly
    how a saturated NIC or NVMe channel behaves.
    """

    def __init__(self, simulator: Simulator, rate: float, name: str = "bucket") -> None:
        if rate <= 0:
            raise SimulationError(f"token bucket rate must be positive, got {rate}")
        self.simulator = simulator
        self.rate = float(rate)
        self.name = name
        self._free_at = 0.0  # next time the channel is idle
        self.total_bytes = 0

    def reserve(self, amount: float) -> float:
        """Reserve bandwidth for ``amount`` bytes; return the completion delay.

        The caller should ``yield Timeout(delay)`` with the returned delay.
        """
        if amount < 0:
            raise SimulationError(f"negative transfer size: {amount}")
        now = self.simulator.now
        start = max(now, self._free_at)
        duration = amount / self.rate
        self._free_at = start + duration
        self.total_bytes += int(amount)
        return self._free_at - now

    def transfer(self, amount: float) -> Generator:
        """Generator: sleep exactly as long as the reservation requires."""
        delay = self.reserve(amount)
        if delay > 0:
            yield Timeout(delay)
        return None

"""Deterministic discrete-event simulation engine.

The engine drives every timed behaviour in the reproduction: guest boot
sequences, QEMU's event loop, virtqueue kicks, request/response protocols
(ttRPC, 9p), and the closed-loop clients of the macro-benchmarks.

The programming model is the classic generator-coroutine DES (as popularized
by SimPy): a *process* is a generator that yields commands —
:class:`~repro.simcore.engine.Timeout`, :class:`~repro.simcore.engine.Wait`,
or another process — and the :class:`~repro.simcore.engine.Simulator`
advances a virtual clock between events. There is no wall-clock dependency
anywhere, so runs are exactly reproducible.
"""

from repro.simcore.engine import Simulator, Timeout, Wait, Process
from repro.simcore.event import Event, EventQueue
from repro.simcore.resources import Resource, Store, TokenBucket
from repro.simcore.tracing import SimTrace, TraceRecord

__all__ = [
    "Simulator",
    "Timeout",
    "Wait",
    "Process",
    "Event",
    "EventQueue",
    "Resource",
    "Store",
    "TokenBucket",
    "SimTrace",
    "TraceRecord",
]

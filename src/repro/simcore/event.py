"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronization point: processes wait on it,
and when it is *succeeded* (or *failed*) every waiter is resumed. The
:class:`EventQueue` is the simulator's time-ordered agenda; ties are broken
by insertion order so the schedule is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue", "ScheduledEntry"]


class Event:
    """A one-shot event with an optional payload value.

    States: *pending* → *succeeded* | *failed*. Triggering twice is an
    error; this catches double-completion bugs in protocol models early.
    """

    __slots__ = ("name", "_value", "_ok", "_done", "callbacks")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value: Any = None
        self._ok: bool = True
        self._done: bool = False
        self.callbacks: list[Callable[["Event"], None]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"Event({self.name!r}, {state})"

    @property
    def triggered(self) -> bool:
        """Whether the event has completed (successfully or not)."""
        return self._done

    @property
    def ok(self) -> bool:
        """Whether the event completed successfully."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` or :meth:`fail`."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and remember its payload."""
        self._trigger(value, ok=True)
        return self

    def fail(self, error: BaseException) -> "Event":
        """Mark the event failed; waiters will see the exception re-raised."""
        self._trigger(error, ok=False)
        return self

    def _trigger(self, value: Any, *, ok: bool) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._done = True
        self._ok = ok
        self._value = value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class ScheduledEntry:
    """A (time, sequence, callback) agenda entry. Comparable for heapq."""

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "ScheduledEntry") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventQueue:
    """Time-ordered agenda with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEntry] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def push(self, time: float, callback: Callable[[], None]) -> ScheduledEntry:
        """Schedule ``callback`` to run at absolute virtual ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at NaN time")
        entry = ScheduledEntry(time, next(self._counter), callback)
        heapq.heappush(self._heap, entry)
        return entry

    def pop(self) -> Optional[ScheduledEntry]:
        """Pop the earliest non-cancelled entry, or None when empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                return entry
        return None

    def peek_time(self) -> Optional[float]:
        """The virtual time of the next pending entry, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

"""QEMU/KVM — the feature-complete reference hypervisor (Section 2.1.1).

A per-VM QEMU process runs the guest through KVM; the event-driven
``main_loop_wait()`` handles device emulation when the guest traps out.
QEMU's device model is by far the largest of the studied VMMs (40+
devices), and its two decades of optimization show: mature virtio-blk and
vhost-net datapaths put its I/O close to native (Figure 9) while its
memory path trades a little throughput for good latency (Finding 4).

Three machine-model variants appear in the boot experiments (Figure 14):

* ``q35``   — the default: SeaBIOS firmware, full PC hardware;
* ``qboot`` — q35 with the minimal qboot BIOS replacing SeaBIOS;
* ``microvm`` (µVM) — the Firecracker-inspired minimal machine: no
  firmware, virtio-mmio devices, *no ACPI* — which is exactly why it
  boots slowest end-to-end: without ACPI the Linux guest's power-down
  falls back to a timeout-driven reset chain (Finding 14's surprise).
"""

from __future__ import annotations

import enum

from repro.guests.linux import GuestKernelImage, standard_linux_guest
from repro.kernel.netdev import TapVirtioPath
from repro.kernel.netstack import GuestLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.units import GB, ms, us
from repro.virtio.blk import VirtioBlk

__all__ = ["QemuMachineModel", "QemuPlatform"]

#: Bandwidth at which a VMM reads + places a kernel image into guest RAM.
KERNEL_LOAD_BANDWIDTH = 1.0 * GB


class QemuMachineModel(enum.Enum):
    """QEMU -machine variants used in the paper's boot study."""

    Q35 = "q35"
    QBOOT = "qboot"
    MICROVM = "microvm"


#: Emulated devices the guest kernel probes at boot, per machine model.
_DEVICE_COUNT = {
    QemuMachineModel.Q35: 40,
    QemuMachineModel.QBOOT: 40,
    QemuMachineModel.MICROVM: 8,
}

_FIRMWARE_TIME = {
    QemuMachineModel.Q35: ms(66.0),     # SeaBIOS POST + option ROM scan
    QemuMachineModel.QBOOT: ms(11.0),   # qboot: jump to the kernel asap
    QemuMachineModel.MICROVM: 0.0,      # no firmware at all
}

#: ACPI-less Linux power-down fallback (microvm only): the guest walks the
#: keyboard-controller / triple-fault reset chain with built-in timeouts.
_MICROVM_SHUTDOWN_FALLBACK = ms(265.0)


class QemuPlatform(Platform):
    """QEMU with KVM acceleration."""

    name = "qemu"
    label = "QEMU"
    family = PlatformFamily.HYPERVISOR

    def __init__(
        self,
        machine=None,
        *,
        machine_model: QemuMachineModel = QemuMachineModel.Q35,
        guest_kernel: GuestKernelImage | None = None,
    ) -> None:
        super().__init__(machine)
        self.machine_model = machine_model
        if machine_model is not QemuMachineModel.Q35:
            self.name = f"qemu-{machine_model.value}"
            self.label = {
                QemuMachineModel.QBOOT: "QEMU (qboot)",
                QemuMachineModel.MICROVM: "QEMU (uVM)",
            }[machine_model]
        self.guest_kernel = guest_kernel if guest_kernel else standard_linux_guest()
        self.virtio_blk = VirtioBlk(vmm_request_handling_s=us(3.0))

    # --- profiles -------------------------------------------------------------

    def cpu_profile(self) -> CpuProfile:
        # Guest code runs natively; the guest kernel schedules with CFS.
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        # Finding 4: QEMU leans to the throughput side of the hypervisor
        # latency/throughput trade-off — decent latency, reduced copy rate
        # (extra softmmu indirection on the streaming path). Its mature MMU
        # handling (EPT + transparent hugepage backing) keeps TLB-miss costs
        # near native, so no nested-paging penalty applies.
        return MemoryProfile(
            nested_paging=False,
            dram_latency_factor=1.04,
            bandwidth_factor=0.86,
            stream_bandwidth_factor=0.88,
            latency_std=0.035,
        )

    def io_profile(self) -> IoProfile:
        # Extra NVMe attached as a second virtio-blk drive, ext4 in-guest.
        guest_block_layer = us(12.0)
        return IoProfile(
            per_request_latency_s=self.virtio_blk.request_latency_overhead()
            + guest_block_layer,
            read_efficiency=0.97,
            write_efficiency=0.90,
            write_std=0.06,
            guest_page_cache=True,
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(path=TapVirtioPath(maturity_overhead=1.0), stack=GuestLinuxStack())

    # --- boot ------------------------------------------------------------------

    def boot_phases(self) -> list[BootPhase]:
        devices = _DEVICE_COUNT[self.machine_model]
        # The microvm machine model does not start the QEMU process any
        # faster in this QEMU version — part of why it disappoints.
        vmm_start = ms(78.0)
        phases = [
            BootPhase("qemu-process-start", vmm_start, rel_std=0.07),
            BootPhase("kvm-vm-setup", ms(4.5), rel_std=0.10),
        ]
        firmware = _FIRMWARE_TIME[self.machine_model]
        if firmware > 0:
            phases.append(BootPhase("firmware", firmware, rel_std=0.06))
        phases.append(
            BootPhase(
                "kernel-load",
                self.guest_kernel.load_time_s(KERNEL_LOAD_BANDWIDTH),
                rel_std=0.08,
            )
        )
        phases.append(
            BootPhase(
                "kernel-init",
                self.guest_kernel.kernel_init_time_s(devices),
                rel_std=0.06,
            )
        )
        phases.append(BootPhase("patched-init-exit", ms(1.2), rel_std=0.2))
        if self.machine_model is QemuMachineModel.MICROVM:
            phases.append(
                BootPhase("acpi-less-shutdown-fallback", _MICROVM_SHUTDOWN_FALLBACK, rel_std=0.05)
            )
        phases.append(BootPhase("teardown", ms(11.0), rel_std=0.12))
        return phases

    def packet_rate_capacity(self) -> float:
        # virtio-net with vhost sustains high but finite small-packet rates.
        return 1_200_000.0

    def capabilities(self) -> Capabilities:
        return Capabilities()

    def isolation_mechanisms(self) -> list[str]:
        return ["hardware-virtualization", "separate-guest-kernel", "iommu-dma-isolation"]

    def hap_profile_name(self) -> str:
        return "qemu"

"""Firecracker — AWS's minimalist Rust microVM (Section 2.1.2).

Seven emulated devices, direct 64-bit boot of an *uncompressed* vmlinux,
REST API configuration before ``InstanceStart``. The paper's measurements
puncture two pieces of its reputation:

* **memory** — Firecracker is the outlier in latency *and* throughput
  (Finding 4); the paper attributes this to the ``vm-memory`` crate that
  mediates all guest memory operations;
* **boot time** — end-to-end (process creation to termination) it boots
  *slowest* of the three hypervisors (Finding 14, Conclusion 5): the
  published sub-125 ms figure timed only a kernel-internal interval. The
  end-to-end path pays API configuration round trips and the byte-wise
  copy of a ~45 MiB vmlinux through vm-memory;
* **storage** — extra drives cannot be attached at runtime, so Firecracker
  is excluded from the fio experiments (Section 3.3).
"""

from __future__ import annotations

from repro.errors import UnsupportedOperationError
from repro.guests.linux import standard_linux_guest
from repro.kernel.netdev import TapVirtioPath
from repro.kernel.netstack import GuestLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.units import MB, ms, us
from repro.virtio.blk import VirtioBlk
from repro.virtio.queue import Virtqueue

__all__ = ["FirecrackerPlatform"]

#: vm-memory crate copy bandwidth for placing the kernel image: the
#: byte-wise, bounds-checked GuestMemory path, far below a raw memcpy.
VM_MEMORY_LOAD_BANDWIDTH = 200 * MB

#: Device-model size (virtio-net, virtio-blk, serial, i8042, clock...).
DEVICE_COUNT = 7


class FirecrackerPlatform(Platform):
    """Firecracker microVM."""

    name = "firecracker"
    label = "Firecracker"
    family = PlatformFamily.HYPERVISOR

    def __init__(self, machine=None) -> None:
        super().__init__(machine)
        self.guest_kernel = standard_linux_guest(uncompressed=True)
        # Firecracker handles virtqueue kicks in its own epoll loop, not
        # via in-kernel ioeventfd handling: every kick bounces to userspace.
        self.virtio_blk = VirtioBlk(
            queue=Virtqueue("fc-blk-vq", ioeventfd=False),
            vmm_request_handling_s=us(5.0),
        )

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        # Finding 4: the outlier — higher average latency AND higher
        # standard deviation, plus reduced copy throughput (vm-memory).
        return MemoryProfile(
            nested_paging=True,
            dram_latency_factor=1.42,
            bandwidth_factor=0.80,
            stream_bandwidth_factor=0.82,
            latency_std=0.11,
            bandwidth_std=0.03,
        )

    def io_profile(self) -> IoProfile:
        raise UnsupportedOperationError(
            "Firecracker does not support attaching extra storage devices; "
            "excluded from the fio experiments (Section 3.3)"
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(
            path=TapVirtioPath(maturity_overhead=1.18), stack=GuestLinuxStack()
        )

    def boot_phases(self) -> list[BootPhase]:
        return [
            BootPhase("firecracker-process-start", ms(14.0), rel_std=0.08),
            # PUT /machine-config, /boot-source, /drives, /network-interfaces,
            # /actions(InstanceStart): serialized unix-socket REST calls.
            BootPhase("api-configuration", ms(30.0), rel_std=0.10),
            BootPhase("kvm-vm-setup", ms(3.0), rel_std=0.10),
            BootPhase(
                "vmlinux-load-vm-memory",
                self.guest_kernel.load_time_s(VM_MEMORY_LOAD_BANDWIDTH),
                rel_std=0.07,
            ),
            BootPhase(
                "kernel-init",
                self.guest_kernel.kernel_init_time_s(DEVICE_COUNT),
                rel_std=0.06,
            ),
            BootPhase("patched-init-exit", ms(1.2), rel_std=0.2),
            BootPhase("teardown", ms(6.0), rel_std=0.12),
        ]

    def capabilities(self) -> Capabilities:
        return Capabilities(attach_extra_drives=False)

    def isolation_mechanisms(self) -> list[str]:
        return [
            "hardware-virtualization",
            "separate-guest-kernel",
            "jailer-chroot",
            "seccomp-vmm-filter",
        ]

"""Cloud Hypervisor — between Firecracker's minimalism and QEMU's
completeness (Section 2.1.3).

16 devices (vs. Firecracker's 7 and QEMU's 40+), vhost-user support, and
memory/vCPU hotplug through its API. In the paper's measurements it is a
study in immaturity trade-offs:

* fastest hypervisor to boot (Figure 14) — no firmware, lean device model;
* *remarkably good* fio random-read latency but the worst sequential
  throughput of the hypervisors (Figures 9/10, Finding 9): a simple
  synchronous block backend is cheap per request and slow in aggregate;
* elevated memory latency (shares the vm-memory crate with Firecracker,
  Finding 4) but near-full copy throughput;
* "severe inefficiencies" in the network datapath (Section 3.4) despite a
  QEMU-equal architecture — modelled as a high maturity overhead;
* surprisingly few host-kernel functions invoked (Finding 25), attributed
  to its work-in-progress feature coverage.
"""

from __future__ import annotations

from repro.guests.linux import standard_linux_guest
from repro.kernel.netdev import TapVirtioPath
from repro.kernel.netstack import GuestLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.platforms.qemu import KERNEL_LOAD_BANDWIDTH
from repro.units import ms, us
from repro.virtio.blk import VirtioBlk

__all__ = ["CloudHypervisorPlatform"]

DEVICE_COUNT = 16


class CloudHypervisorPlatform(Platform):
    """Cloud Hypervisor (Rust-VMM based)."""

    name = "cloud-hypervisor"
    label = "Cloud Hypervisor"
    family = PlatformFamily.HYPERVISOR

    def __init__(self, machine=None) -> None:
        super().__init__(machine)
        # PVH direct boot of the compressed kernel: no firmware stage.
        self.guest_kernel = standard_linux_guest()
        self.virtio_blk = VirtioBlk(vmm_request_handling_s=us(2.2))

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        # Finding 4: latency elevated (vm-memory crate) but, unlike QEMU,
        # throughput is nearly intact — the other side of the trade-off.
        return MemoryProfile(
            nested_paging=True,
            dram_latency_factor=1.15,
            bandwidth_factor=0.96,
            stream_bandwidth_factor=0.97,
            latency_std=0.06,
        )

    def io_profile(self) -> IoProfile:
        # Synchronous block backend: minimal per-request work (good QD1
        # latency, Figure 10) but no deep-queue parallelism (poor 128 KiB
        # throughput, Figure 9).
        guest_block_layer = us(10.0)
        return IoProfile(
            per_request_latency_s=self.virtio_blk.request_latency_overhead()
            + guest_block_layer,
            read_efficiency=0.58,
            write_efficiency=0.52,
            write_std=0.09,
            read_std=0.07,
            latency_std=0.04,
            guest_page_cache=True,
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(
            path=TapVirtioPath(maturity_overhead=2.1), stack=GuestLinuxStack()
        )

    def boot_phases(self) -> list[BootPhase]:
        return [
            BootPhase("clh-process-start", ms(21.0), rel_std=0.08),
            BootPhase("kvm-vm-setup", ms(3.2), rel_std=0.10),
            BootPhase(
                "kernel-load-pvh",
                self.guest_kernel.load_time_s(KERNEL_LOAD_BANDWIDTH),
                rel_std=0.08,
            ),
            BootPhase(
                "kernel-init",
                self.guest_kernel.kernel_init_time_s(DEVICE_COUNT),
                rel_std=0.06,
            ),
            BootPhase("patched-init-exit", ms(1.2), rel_std=0.2),
            BootPhase("teardown", ms(8.0), rel_std=0.12),
        ]

    def capabilities(self) -> Capabilities:
        return Capabilities()

    def isolation_mechanisms(self) -> list[str]:
        return [
            "hardware-virtualization",
            "separate-guest-kernel",
            "seccomp-vmm-filter",
        ]

    def hap_profile_name(self) -> str:
        return "cloud-hypervisor"

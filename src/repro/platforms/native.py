"""Bare-metal execution — the baseline every figure normalizes against."""

from __future__ import annotations

from repro.kernel.netdev import NativePath
from repro.kernel.netstack import HostLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.units import ms

__all__ = ["NativePlatform"]


class NativePlatform(Platform):
    """Processes running directly on the host, no isolation."""

    name = "native"
    label = "Native"
    family = PlatformFamily.NATIVE

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(
            scheduler=CfsScheduler(),
            vcpus=self.machine.total_threads,
        )

    def memory_profile(self) -> MemoryProfile:
        return MemoryProfile()

    def io_profile(self) -> IoProfile:
        # fio against the raw block device: the measurement floor.
        return IoProfile(
            per_request_latency_s=0.0,
            read_efficiency=1.0,
            write_efficiency=1.0,
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(path=NativePath(), stack=HostLinuxStack())

    def boot_phases(self) -> list[BootPhase]:
        # fork + execve of a plain process; the floor of Figure 13.
        return [
            BootPhase("fork-exec", ms(2.0), rel_std=0.18),
            BootPhase("process-exit", ms(0.8), rel_std=0.2),
        ]

    def capabilities(self) -> Capabilities:
        return Capabilities()

    def isolation_mechanisms(self) -> list[str]:
        return ["process-boundary"]

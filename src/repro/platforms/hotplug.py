"""Cloud Hypervisor hotplug model (Section 2.1.3).

Cloud Hypervisor differentiates itself from Firecracker by supporting
hotplug through its API:

* **memory** is hotplugged by allocating on the host *in multiples of
  128 MiB* and mapping it from the VMM process into the guest's
  virtualized memory;
* **vCPUs** are hotplugged with a ``CREATE_VCPU`` ioctl, then advertised
  to the running guest kernel via ACPI — but the new CPUs stay offline
  until someone writes to the guest's sysfs (``.../cpuN/online``).

The model charges realistic costs per step and enforces both quirks
(granularity; the explicit online step), so the paper's description is
executable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, PlatformError
from repro.kernel.kvm import KvmModule, KvmVm
from repro.units import MIB, ms, us

__all__ = ["HotplugController", "HOTPLUG_MEMORY_GRANULE"]

#: Host allocations for hotplugged memory must be a multiple of this.
HOTPLUG_MEMORY_GRANULE = 128 * MIB


@dataclass
class HotplugController:
    """The hotplug side of a running Cloud Hypervisor VM."""

    kvm: KvmModule
    vm: KvmVm
    #: vCPUs created but not yet brought online inside the guest.
    offline_vcpus: int = 0
    #: API request handling per hotplug call.
    api_cost_s: float = field(default=us(350.0))
    #: mmap + KVM memory-region update per granule.
    per_granule_map_cost_s: float = field(default=ms(1.1))
    #: ACPI notification + guest-side device discovery per vCPU.
    acpi_advertise_cost_s: float = field(default=ms(2.4))
    #: sysfs write + guest CPU bring-up (idle thread, timers).
    online_cost_s: float = field(default=ms(18.0))

    # --- memory ---------------------------------------------------------------

    def hotplug_memory(self, size_bytes: int) -> float:
        """Add guest memory; returns the operation's latency.

        ``size_bytes`` must be a positive multiple of 128 MiB (the
        host-allocation granularity the paper describes).
        """
        if size_bytes <= 0:
            raise ConfigurationError("hotplug size must be positive")
        if size_bytes % HOTPLUG_MEMORY_GRANULE != 0:
            raise PlatformError(
                f"hotplugged memory must be a multiple of 128 MiB, got "
                f"{size_bytes / MIB:.0f} MiB"
            )
        granules = size_bytes // HOTPLUG_MEMORY_GRANULE
        map_cost = self.kvm.map_memory(self.vm, size_bytes)
        return self.api_cost_s + granules * self.per_granule_map_cost_s + map_cost

    # --- vCPUs -----------------------------------------------------------------

    def hotplug_vcpus(self, count: int) -> float:
        """CREATE_VCPU + ACPI advertisement; the vCPUs remain *offline*."""
        if count < 1:
            raise ConfigurationError("must hotplug at least one vCPU")
        create_cost = self.kvm.create_vcpus(self.vm, count)
        self.offline_vcpus += count
        return self.api_cost_s + create_cost + count * self.acpi_advertise_cost_s

    def online_vcpus(self, count: int) -> float:
        """Bring hotplugged vCPUs online via the guest sysfs interface."""
        if count < 1:
            raise ConfigurationError("must online at least one vCPU")
        if count > self.offline_vcpus:
            raise PlatformError(
                f"only {self.offline_vcpus} hotplugged vCPUs are offline; "
                f"cannot online {count}"
            )
        self.offline_vcpus -= count
        return count * self.online_cost_s

    @property
    def usable_vcpus(self) -> int:
        """vCPUs the guest can actually schedule on."""
        return self.vm.vcpus - self.offline_vcpus

"""The VMM event loop — QEMU's ``main_loop_wait()`` as a DES model.

Section 2.1.1 (Figure 1) describes QEMU's event-driven core: a main loop
that waits on registered file descriptors (TAP device, virtio ioeventfds,
the monitor), runs expired timers, and executes *bottom-halves* (deferred
function calls from other threads). Firecracker and Cloud Hypervisor use
the same architecture with epoll.

The model runs the loop as a simulation process: event sources enqueue
work items; the loop drains them one batch per iteration, charging a
per-wakeup cost (the ppoll/epoll_wait syscall) plus per-event handler
costs. It exposes the two quantities the performance models need:

* **dispatch latency** — how long an event waits for the loop (grows when
  the loop is busy: the device-model contention effect);
* **sustainable event rate** — events/second before the loop saturates
  (one mechanism behind the small-packet rate ceilings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simcore.engine import Simulator, Timeout, Wait
from repro.simcore.event import Event
from repro.simcore.resources import Store
from repro.units import us

__all__ = ["LoopEvent", "VmmEventLoop", "loop_for"]


@dataclass(frozen=True)
class LoopEvent:
    """One unit of device-model work posted to the loop."""

    kind: str                  # "fd" | "timer" | "bottom-half"
    handler_cost_s: float
    posted_at: float


class VmmEventLoop:
    """A running VMM main loop inside a simulator.

    ``wakeup_cost_s`` is the poll syscall + loop bookkeeping per
    iteration; handlers then run back to back, which is exactly why
    batches amortize well and why a busy loop adds latency to every
    device. ``name`` distinguishes QEMU ("main_loop_wait") from the Rust
    VMMs ("epoll loop").
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        name: str = "main_loop_wait",
        wakeup_cost_s: float = us(1.8),
        max_batch: int = 64,
    ) -> None:
        if wakeup_cost_s < 0:
            raise ConfigurationError("wakeup cost must be non-negative")
        if max_batch < 1:
            raise ConfigurationError("batch size must be >= 1")
        self.simulator = simulator
        self.name = name
        self.wakeup_cost_s = wakeup_cost_s
        self.max_batch = max_batch
        self._queue: Store = Store(simulator, f"{name}-events")
        self._completions: dict[int, Event] = {}
        self._next_id = 0
        self.iterations = 0
        self.events_handled = 0
        self.total_wait_time = 0.0
        self._process = simulator.spawn(self._run(), name=name)

    # --- event sources ---------------------------------------------------------

    def post(self, kind: str, handler_cost_s: float) -> Event:
        """Post one event; returns an Event that fires when handled."""
        if handler_cost_s < 0:
            raise ConfigurationError("handler cost must be non-negative")
        if kind not in ("fd", "timer", "bottom-half"):
            raise ConfigurationError(f"unknown loop event kind: {kind!r}")
        self._next_id += 1
        token = self._next_id
        done = Event(f"{self.name}-done-{token}")
        self._completions[token] = done
        self._queue.put(
            (token, LoopEvent(kind, handler_cost_s, self.simulator.now))
        )
        return done

    # --- the loop body ------------------------------------------------------------

    def _run(self):
        while True:
            # Wait for at least one event (ppoll blocks here).
            token, event = yield from self._queue.get()
            yield Timeout(self.wakeup_cost_s)
            self.iterations += 1
            batch = [(token, event)]
            # Drain whatever else is already pending, up to the batch cap —
            # QEMU services all ready fds per iteration.
            while len(self._queue) > 0 and len(batch) < self.max_batch:
                more = yield from self._queue.get()
                batch.append(more)
            for tok, evt in batch:
                yield Timeout(evt.handler_cost_s)
                self.events_handled += 1
                self.total_wait_time += self.simulator.now - evt.posted_at
                self._completions.pop(tok).succeed(self.simulator.now)

    # --- derived metrics -------------------------------------------------------------

    @property
    def mean_dispatch_latency(self) -> float:
        """Average post-to-completion latency so far."""
        if self.events_handled == 0:
            return 0.0
        return self.total_wait_time / self.events_handled

    def sustainable_event_rate(self, handler_cost_s: float) -> float:
        """Events/second the loop sustains for uniform handler costs.

        With full batching the wakeup amortizes over ``max_batch`` events.
        """
        per_event = handler_cost_s + self.wakeup_cost_s / self.max_batch
        return 1.0 / per_event if per_event > 0 else float("inf")


def loop_for(simulator: Simulator, vmm: str) -> VmmEventLoop:
    """Construct the event loop matching a VMM's architecture.

    QEMU's glib-based loop has a heavier wakeup than the Rust epoll loops,
    but services more fds per iteration.
    """
    if vmm == "qemu":
        return VmmEventLoop(simulator, name="main_loop_wait", wakeup_cost_s=us(2.2), max_batch=64)
    if vmm == "firecracker":
        return VmmEventLoop(simulator, name="fc-epoll", wakeup_cost_s=us(1.1), max_batch=24)
    if vmm == "cloud-hypervisor":
        return VmmEventLoop(simulator, name="clh-epoll", wakeup_cost_s=us(1.2), max_batch=32)
    raise ConfigurationError(f"no event-loop model for VMM {vmm!r}")

"""Kata Containers — a container interface wrapped around a hypervisor
(Section 2.3.1).

``kata-runtime`` boots a stripped QEMU VM with an optimized kernel and a
Clear Linux mini-OS whose systemd immediately starts the ``kata-agent``;
the host runtime drives the agent over ttRPC-on-vsock, and the container's
rootfs is shared from the host through 9p (default) or virtio-fs.

Measured personality:

* memory performance is *not* impaired despite QEMU underneath —
  NVDIMM-style direct mapping bypasses the usual virtualization layer
  (Finding 3) at the price of a weaker isolation boundary;
* hugepages are unsupported (Section 3.2);
* block I/O through 9p is the worst in the study; virtio-fs brings it to
  QEMU level (Findings 6/7);
* network latency stays bridge-class thanks to vhost-net (Finding 10)
  while throughput is bounded by its weakest link, the QEMU datapath;
* startup pays for namespaces *plus* a hypervisor boot plus the agent
  handshake: ~600 ms (Finding 13);
* HAP is high: hypervisor + agent + shared filesystem all touch the host
  kernel (Finding 26), yet defense-in-depth is real (Finding 28).
"""

from __future__ import annotations

from repro.guests.clearlinux import ClearLinuxRootfs
from repro.guests.linux import kata_optimized_kernel
from repro.kernel.cgroups import CgroupSetup, CgroupVersion
from repro.kernel.namespaces import NamespaceSet
from repro.kernel.netdev import KataVhostPath
from repro.kernel.netstack import GuestLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.platforms.qemu import KERNEL_LOAD_BANDWIDTH
from repro.units import ms, us
from repro.virtio.fs import VirtioFs
from repro.virtio.ninep import NinePChannel
from repro.virtio.vsock import VsockChannel

__all__ = ["KataPlatform"]

#: The stripped "qemu-lite" device model Kata configures.
DEVICE_COUNT = 9


class KataPlatform(Platform):
    """Kata containers (QEMU + kata-agent), 9p or virtio-fs rootfs."""

    name = "kata"
    label = "Kata"
    family = PlatformFamily.SECURE_CONTAINER

    def __init__(self, machine=None, *, rootfs_transport: str = "9p") -> None:
        super().__init__(machine)
        if rootfs_transport not in ("9p", "virtiofs"):
            raise ValueError(f"unknown rootfs transport: {rootfs_transport!r}")
        self.rootfs_transport = rootfs_transport
        if rootfs_transport == "virtiofs":
            self.name = "kata-virtiofs"
            self.label = "Kata (virtio-fs)"
        self.guest_kernel = kata_optimized_kernel()
        self.rootfs = ClearLinuxRootfs()
        self.namespaces = NamespaceSet.standard_container()
        self.cgroups = CgroupSetup(version=CgroupVersion.V1)
        self.ninep = NinePChannel(name="kata-9p")
        self.virtiofs = VirtioFs(name="kata-virtiofs")
        self.vsock = VsockChannel(name="kata-vsock")

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        # Finding 3: QEMU's NVDIMM direct mapping + KSM avoid the usual
        # hypervisor memory penalty — at an isolation cost (Section 3.2).
        return MemoryProfile(
            nested_paging=True,
            direct_mapped=True,
            dram_latency_factor=1.0,
            bandwidth_factor=0.99,
            supports_hugepages=False,  # Section 3.2: no hugepage support
        )

    def io_profile(self) -> IoProfile:
        guest_block_layer = us(12.0)
        if self.rootfs_transport == "9p":
            # Every request is a 9p RPC chain across the VM boundary.
            nvme_read = self.machine.nvme.seq_read_bw
            return IoProfile(
                per_request_latency_s=self.ninep.operation_latency(4096)
                + guest_block_layer,
                read_efficiency=min(1.0, self.ninep.streaming_bandwidth() / nvme_read),
                write_efficiency=min(1.0, 0.9 * self.ninep.streaming_bandwidth() / nvme_read),
                latency_std=0.09,
                read_std=0.06,
                write_std=0.08,
                guest_page_cache=True,
                honors_o_direct_end_to_end=True,
            )
        # virtio-fs: FUSE-over-virtio with DAX — on par with QEMU (Finding 7).
        return IoProfile(
            per_request_latency_s=self.virtiofs.operation_latency(4096) + guest_block_layer,
            read_efficiency=0.95,
            write_efficiency=0.89,
            write_std=0.06,
            guest_page_cache=True,
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(path=KataVhostPath(), stack=GuestLinuxStack())

    def boot_phases(self) -> list[BootPhase]:
        return [
            BootPhase("kata-runtime-init", ms(34.0), rel_std=0.10),
            BootPhase("namespaces", self.namespaces.creation_cost(), rel_std=0.15),
            BootPhase("cgroups", self.cgroups.setup_cost(), rel_std=0.15),
            # Host-side network plumbing: netns, tc-mirroring between the
            # veth and the VM's TAP device.
            BootPhase("netns-tc-plumbing", ms(160.0), rel_std=0.12),
            BootPhase("qemu-lite-start", ms(82.0), rel_std=0.08),
            BootPhase("kvm-vm-setup", ms(4.0), rel_std=0.10),
            BootPhase(
                "kernel-load",
                self.guest_kernel.load_time_s(KERNEL_LOAD_BANDWIDTH),
                rel_std=0.08,
            ),
            BootPhase(
                "kernel-init",
                self.guest_kernel.kernel_init_time_s(DEVICE_COUNT),
                rel_std=0.06,
            ),
            BootPhase("clearlinux-systemd", self.rootfs.systemd_bringup_s, rel_std=0.08),
            BootPhase("kata-agent-ready", self.rootfs.agent_ready_s, rel_std=0.10),
            BootPhase("vsock-ttrpc-handshake", ms(9.0), rel_std=0.15),
            BootPhase(f"rootfs-share-{self.rootfs_transport}", ms(24.0), rel_std=0.12),
            BootPhase("container-ctx-in-vm", ms(21.0), rel_std=0.12),
            BootPhase("payload-exit", ms(1.2), rel_std=0.2),
            BootPhase("vm-teardown", ms(78.0), rel_std=0.12),
        ]

    def exec_latency(self) -> float:
        """Latency of one ``docker exec`` against a running Kata container.

        Section 2.3.1: the runtime simply forwards the command over the
        ttRPC/vsock channel to the kata-agent, which delegates it to the
        confined context to spawn the new process — so an exec pays the
        runtime hop, one agent RPC, and an in-guest clone+exec, but *not*
        a VM boot.
        """
        runtime_forward = ms(1.2)
        in_guest_spawn = ms(2.8)  # clone + exec inside the confined context
        return runtime_forward + self.vsock.rpc_latency() + in_guest_spawn

    def packet_rate_capacity(self) -> float:
        # The veth -> bridge -> tc-mirror -> vhost chain saturates at a
        # modest small-packet rate: Kata's memcached surprise (Finding 18).
        return 450_000.0

    def oltp_capacity_factor(self) -> float:
        # Finding 22 attributes Kata's halved MySQL throughput to its
        # high I/O latency on the redo-log path (9p rootfs).
        return 0.55

    def capabilities(self) -> Capabilities:
        return Capabilities(hugepages=False)

    def isolation_mechanisms(self) -> list[str]:
        mechanisms = [f"namespace:{kind.value}" for kind in sorted(
            self.namespaces.kinds, key=lambda k: k.value)]
        mechanisms.extend(
            [
                "cgroups-v1",
                "hardware-virtualization",
                "separate-guest-kernel",
            ]
        )
        return mechanisms

    def hap_profile_name(self) -> str:
        return "kata"

"""Docker (runc) — namespaces + cgroups behind the Docker daemon.

Section 2.2.1: the CLI talks to ``dockerd``, which delegates container
creation to ``runc``; isolation comes entirely from host-kernel
namespaces and cgroups, the rootfs is a layered overlayfs, and the
benchmark volume is a bind mount. Figure 13 measures both the full
daemon path and direct OCI (``runc``) invocation — the daemon adds
~250 ms.
"""

from __future__ import annotations

from repro.kernel.cgroups import CgroupSetup, CgroupVersion
from repro.kernel.filesystems import FILESYSTEMS
from repro.kernel.namespaces import NamespaceSet
from repro.kernel.netdev import BridgePath
from repro.kernel.netstack import HostLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.units import ms

__all__ = ["DockerPlatform"]

#: ffmpeg guests get 16 CPUs across all platforms (Section 3.1).
GUEST_VCPUS = 16


class DockerPlatform(Platform):
    """Docker with the default runc runtime."""

    name = "docker"
    label = "Docker"
    family = PlatformFamily.CONTAINER

    def __init__(self, machine=None, *, via_daemon: bool = True) -> None:
        super().__init__(machine)
        self.via_daemon = via_daemon
        if not via_daemon:
            self.label = "Docker (OCI)"
        self.namespaces = NamespaceSet.standard_container()
        self.cgroups = CgroupSetup(version=CgroupVersion.V1)

    def cpu_profile(self) -> CpuProfile:
        # Containers share the host CFS scheduler: no compute overhead.
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        # Same page tables as native; no nested paging.
        return MemoryProfile()

    def io_profile(self) -> IoProfile:
        # Benchmark volume is a bind mount: one extra VFS/overlay hop.
        overlay = FILESYSTEMS["overlayfs"]
        return IoProfile(
            per_request_latency_s=overlay.per_op_overhead_s,
            read_efficiency=overlay.bandwidth_efficiency,
            write_efficiency=0.975,
        )

    def net_profile(self) -> NetProfile:
        # veth pair into docker0 plus the iptables NAT rules.
        return NetProfile(path=BridgePath(nat=True), stack=HostLinuxStack())

    def boot_phases(self) -> list[BootPhase]:
        phases: list[BootPhase] = []
        if self.via_daemon:
            # CLI -> REST API -> containerd -> shim round trips, plus
            # snapshot preparation in the graph driver.
            phases.append(BootPhase("dockerd-api", ms(130.0), rel_std=0.10))
            phases.append(BootPhase("graphdriver-prepare", ms(85.0), rel_std=0.12))
            phases.append(BootPhase("dockerd-network-setup", ms(38.0), rel_std=0.12))
        phases.extend(
            [
                BootPhase("runc-init", ms(16.0), rel_std=0.10),
                BootPhase("namespaces", self.namespaces.creation_cost(), rel_std=0.15),
                BootPhase("cgroups", self.cgroups.setup_cost(), rel_std=0.15),
                BootPhase("rootfs-mount", ms(30.0), rel_std=0.12),
                BootPhase("veth-bridge-attach", ms(26.0), rel_std=0.15),
                BootPhase("tini-exec", ms(5.0), rel_std=0.15),
                BootPhase("payload-exit", ms(1.2), rel_std=0.2),
                BootPhase("teardown", ms(18.0), rel_std=0.15),
            ]
        )
        return phases

    def capabilities(self) -> Capabilities:
        return Capabilities()

    def isolation_mechanisms(self) -> list[str]:
        mechanisms = [f"namespace:{kind.value}" for kind in sorted(
            self.namespaces.kinds, key=lambda k: k.value)]
        mechanisms.append("cgroups-v1")
        mechanisms.append("seccomp-default-profile")
        mechanisms.append("capabilities-drop")
        return mechanisms

    def hap_profile_name(self) -> str:
        return "docker"

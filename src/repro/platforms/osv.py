"""OSv — a unikernel run under QEMU or Firecracker (Section 2.4.1).

The application and the library OS share ring 0; the ELF linker turns
syscalls into function calls. OSv's measured personality is bimodal:

* **network**: its lean, syscall-free path beats a Linux guest under the
  same hypervisor — by 25.7 % under QEMU, but only 6.53 % under
  Firecracker, showing the hypervisor datapath dominates (Section 3.4);
* **memory**: OSv-on-QEMU is near-native, OSv-on-Firecracker inherits
  Firecracker's vm-memory penalty (Finding 5);
* **CPU**: the custom thread scheduler collapses under ffmpeg's 16-thread
  SIMD encode (Figure 5 outlier, Finding 1) and flattens MySQL
  (Finding 21);
* **boot**: tiny image, ~11 ms kernel init — faster than any Linux guest,
  and the hypervisor boot-order *reverses* (Figure 15);
* **exclusions**: no libaio (fio), no fork/exec (multi-process apps);
* **security**: the fewest host-kernel functions of all platforms
  (Finding 27, Conclusion 8).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.guests.osv_kernel import OsvImage, osv_image
from repro.kernel.netdev import TapVirtioPath
from repro.kernel.netstack import OsvStack
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.platforms.firecracker import VM_MEMORY_LOAD_BANDWIDTH
from repro.platforms.qemu import KERNEL_LOAD_BANDWIDTH, QemuMachineModel, _FIRMWARE_TIME
from repro.units import ms

__all__ = ["OsvPlatform"]


class OsvPlatform(Platform):
    """OSv unikernel under a configurable hypervisor."""

    name = "osv"
    label = "OSv"
    family = PlatformFamily.UNIKERNEL

    def __init__(
        self,
        machine=None,
        *,
        hypervisor: str = "qemu",
        qemu_machine_model: QemuMachineModel = QemuMachineModel.Q35,
        image: OsvImage | None = None,
    ) -> None:
        super().__init__(machine)
        if hypervisor not in ("qemu", "firecracker"):
            raise ConfigurationError(f"OSv does not run under {hypervisor!r}")
        self.hypervisor = hypervisor
        self.qemu_machine_model = qemu_machine_model
        if hypervisor == "firecracker":
            self.name = "osv-fc"
            self.label = "OSv-FC"
        elif qemu_machine_model is not QemuMachineModel.Q35:
            self.name = f"osv-qemu-{qemu_machine_model.value}"
            self.label = f"OSv (QEMU {qemu_machine_model.value})"
        self.image = image if image is not None else osv_image()

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(
            scheduler=self.image.scheduler,
            vcpus=GUEST_VCPUS,
            simd_overhead_factor=self.image.simd_overhead_factor,
            run_to_run_std=0.03,
        )

    def memory_profile(self) -> MemoryProfile:
        # Finding 5: memory behaviour is inherited from the hypervisor.
        if self.hypervisor == "firecracker":
            return MemoryProfile(
                nested_paging=True,
                dram_latency_factor=1.38,
                bandwidth_factor=0.82,
                stream_bandwidth_factor=0.84,
                latency_std=0.10,
            )
        return MemoryProfile(
            nested_paging=True,
            direct_mapped=True,  # single address space maps guest RAM flat
            dram_latency_factor=1.0,
            bandwidth_factor=0.97,
            latency_std=0.04,
        )

    def io_profile(self) -> IoProfile:
        raise UnsupportedOperationError(
            "OSv has no working libaio engine; excluded from the fio "
            "experiments (Section 3.3)"
        )

    def net_profile(self) -> NetProfile:
        # The poll-mode, syscall-free virtio driver cuts the datapath CPU
        # cost sharply under QEMU (vhost); Firecracker's device model
        # limits the gain (Section 3.4: +25.7 % vs +6.53 %).
        if self.hypervisor == "firecracker":
            return NetProfile(
                path=TapVirtioPath(maturity_overhead=1.18),
                stack=OsvStack(),
                path_cost_factor=0.85,
            )
        return NetProfile(
            path=TapVirtioPath(maturity_overhead=1.0),
            stack=OsvStack(),
            path_cost_factor=0.25,
            path_latency_factor=0.75,
        )

    def boot_phases(self) -> list[BootPhase]:
        phases: list[BootPhase] = []
        if self.hypervisor == "firecracker":
            phases.extend(
                [
                    BootPhase("firecracker-process-start", ms(14.0), rel_std=0.08),
                    BootPhase("api-configuration", ms(30.0), rel_std=0.10),
                    BootPhase("kvm-vm-setup", ms(3.0), rel_std=0.10),
                    BootPhase(
                        "image-load-vm-memory",
                        self.image.load_time_s(VM_MEMORY_LOAD_BANDWIDTH),
                        rel_std=0.07,
                    ),
                ]
            )
        else:
            model = self.qemu_machine_model
            phases.append(BootPhase("qemu-process-start", ms(78.0), rel_std=0.07))
            phases.append(BootPhase("kvm-vm-setup", ms(4.5), rel_std=0.10))
            firmware = _FIRMWARE_TIME[model]
            if firmware > 0:
                phases.append(BootPhase("firmware", firmware, rel_std=0.06))
            phases.append(
                BootPhase(
                    "image-load",
                    self.image.load_time_s(KERNEL_LOAD_BANDWIDTH),
                    rel_std=0.08,
                )
            )
            # NOTE: no ACPI-less shutdown fallback under microvm — OSv uses
            # its own exit path, which is why the microvm model ranks
            # *second fastest* for OSv (Figure 15) while ranking last for
            # Linux guests (Figure 14).
        phases.append(BootPhase("osv-kernel-init", self.image.boot_time_s, rel_std=0.08))
        phases.append(BootPhase("immediate-shutdown", ms(2.0), rel_std=0.15))
        teardown = ms(4.0) if self.hypervisor == "firecracker" else ms(9.0)
        phases.append(BootPhase("teardown", teardown, rel_std=0.12))
        return phases

    def syscall_overhead_factor(self) -> float:
        # Syscalls resolve to plain function calls via the ELF linker.
        return 0.9

    def oltp_capacity_factor(self) -> float:
        # Finding 21: the custom thread scheduler and memory allocator cap
        # database throughput far below the CPU capacity.
        return 0.2

    def capabilities(self) -> Capabilities:
        return Capabilities(
            libaio=False,
            multi_process=False,
            attach_extra_drives=(self.hypervisor != "firecracker"),
        )

    def isolation_mechanisms(self) -> list[str]:
        return [
            "hardware-virtualization",
            "single-address-space-kernel",
            "minimal-host-interface",
        ]

    def hap_profile_name(self) -> str:
        return "osv"

"""LXC — system containers aiming for "as close as possible to a standard
Linux installation".

Section 2.2.2: same namespace/cgroup machinery as runc, but a full systemd
init inside (the cause of its ~800 ms startup, Finding 13), a ZFS-backed
rootfs instead of overlay layers, and support for unprivileged containers
on cgroups v2.
"""

from __future__ import annotations

from repro.kernel.cgroups import CgroupSetup, CgroupVersion
from repro.kernel.filesystems import FILESYSTEMS
from repro.kernel.namespaces import NamespaceSet
from repro.kernel.netdev import BridgePath
from repro.kernel.netstack import HostLinuxStack
from repro.kernel.sched import CfsScheduler
from repro.guests.init import INIT_SYSTEMS
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.units import ms

__all__ = ["LxcPlatform"]


class LxcPlatform(Platform):
    """LXC system containers on a ZFS storage pool."""

    name = "lxc"
    label = "LXC"
    family = PlatformFamily.CONTAINER

    def __init__(self, machine=None, *, unprivileged: bool = False) -> None:
        super().__init__(machine)
        self.unprivileged = unprivileged
        if unprivileged:
            self.namespaces = NamespaceSet.unprivileged_container()
            self.cgroups = CgroupSetup(version=CgroupVersion.V2, unprivileged=True)
        else:
            self.namespaces = NamespaceSet.standard_container()
            self.cgroups = CgroupSetup(version=CgroupVersion.V1)
        self.init_system = INIT_SYSTEMS["systemd"]

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(scheduler=CfsScheduler(), vcpus=GUEST_VCPUS)

    def memory_profile(self) -> MemoryProfile:
        return MemoryProfile()

    def io_profile(self) -> IoProfile:
        # The benchmark disk is a fresh ZFS pool on the extra NVMe device.
        zfs = FILESYSTEMS["zfs"]
        return IoProfile(
            per_request_latency_s=zfs.per_op_overhead_s,
            read_efficiency=zfs.bandwidth_efficiency,
            write_efficiency=0.93,
            write_std=0.05,
        )

    def net_profile(self) -> NetProfile:
        # veth into lxcbr0; no NAT in the benchmark configuration.
        return NetProfile(path=BridgePath(nat=False), stack=HostLinuxStack())

    def boot_phases(self) -> list[BootPhase]:
        return [
            BootPhase("lxc-start-init", ms(42.0), rel_std=0.10),
            BootPhase("namespaces", self.namespaces.creation_cost(), rel_std=0.15),
            BootPhase("cgroups", self.cgroups.setup_cost(), rel_std=0.15),
            BootPhase("zfs-clone-rootfs", ms(65.0), rel_std=0.14),
            BootPhase("veth-bridge-attach", ms(24.0), rel_std=0.15),
            BootPhase(
                "systemd-boot",
                self.init_system.startup_time_s,
                rel_std=self.init_system.startup_std,
            ),
            BootPhase("payload-exit", ms(1.2), rel_std=0.2),
            BootPhase("systemd-shutdown", self.init_system.shutdown_time_s, rel_std=0.12),
        ]

    def capabilities(self) -> Capabilities:
        return Capabilities()

    def isolation_mechanisms(self) -> list[str]:
        mechanisms = [f"namespace:{kind.value}" for kind in sorted(
            self.namespaces.kinds, key=lambda k: k.value)]
        mechanisms.append(f"cgroups-{self.cgroups.version.value}")
        mechanisms.append("apparmor-profile")
        if self.unprivileged:
            mechanisms.append("uid-mapping")
        return mechanisms

"""gVisor — a user-space kernel between the container and the host
(Section 2.3.2).

The Sentry intercepts every guest syscall (via ptrace or KVM), implements
it against its own kernel state, and may itself use only a seccomp-pinched
subset of host syscalls — crucially, *no* I/O syscalls, which are proxied
to the Gofer over 9p. Networking runs through Netstack, gVisor's
from-scratch user-space TCP/IP stack.

Measured personality:

* CPU and memory are near-native (Finding 2) — guest code still executes
  on the host CPU and uses host memory directly;
* file I/O is crippled by the Gofer/9p detour (Finding 8); the 4 KiB
  randread figure *excludes* gVisor because its reads stay cached even
  after both page-cache drops (Section 3.3) — the 9p client cache cannot
  be bypassed with O_DIRECT;
* Netstack makes it the extreme network outlier (Findings 12/19);
* startup is container-like (~190 ms OCI);
* the Sentry's syscall interception multiplies the cost of syscall-heavy
  real workloads (MySQL, Finding 21/22).
"""

from __future__ import annotations

from repro.kernel.cgroups import CgroupSetup, CgroupVersion
from repro.kernel.namespaces import NamespaceSet
from repro.kernel.netdev import NetstackPath
from repro.kernel.netstack import GvisorNetstack
from repro.kernel.sched import CustomScheduler
from repro.kernel.seccomp import SeccompFilter
from repro.platforms.interception import KvmPlatform, PtracePlatform
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.docker import GUEST_VCPUS
from repro.units import ms
from repro.virtio.ninep import NinePChannel

__all__ = ["GvisorPlatform"]


class GvisorPlatform(Platform):
    """gVisor (runsc) with the ptrace or KVM platform."""

    name = "gvisor"
    label = "gVisor"
    family = PlatformFamily.SECURE_CONTAINER

    def __init__(self, machine=None, *, kvm_platform: bool = True) -> None:
        super().__init__(machine)
        self.kvm_platform = kvm_platform
        if not kvm_platform:
            self.name = "gvisor-ptrace"
            self.label = "gVisor (ptrace)"
        self.namespaces = NamespaceSet.standard_container()
        self.cgroups = CgroupSetup(version=CgroupVersion.V1)
        self.sentry_filter = SeccompFilter.sentry_filter()
        # Sentry <-> Gofer over a unix socket carrying 9p.
        self.gofer_channel = NinePChannel(
            name="gofer-9p",
            transport_rtt_s=11e-6 if kvm_platform else 19e-6,
        )

    def interception(self):
        """The active syscall-interception pipeline model."""
        return KvmPlatform() if self.kvm_platform else PtracePlatform()

    def _interception_factor(self) -> float:
        """Relative per-request penalty versus the KVM platform.

        Derived from the interception pipeline primitives (Section 2.3.2):
        ptrace's four scheduler-mediated context switches cost roughly
        twice KVM's lightweight world switch.
        """
        if self.kvm_platform:
            return 1.0
        return PtracePlatform().interception_cost() / KvmPlatform().interception_cost()

    def cpu_profile(self) -> CpuProfile:
        # Threads are Go-runtime-mediated: near-CFS below saturation but
        # degrading faster when oversubscribed.
        return CpuProfile(
            scheduler=CustomScheduler(
                "sentry-go-runtime",
                work_conserving_efficiency=0.97,
                oversubscription_penalty=0.35,
            ),
            vcpus=GUEST_VCPUS,
            simd_overhead_factor=1.03,
        )

    def memory_profile(self) -> MemoryProfile:
        # Guest memory is plain host memory managed by the Sentry: no
        # nested paging penalty (Finding 2).
        return MemoryProfile(bandwidth_factor=0.985)

    def io_profile(self) -> IoProfile:
        nvme_read = self.machine.nvme.seq_read_bw
        gofer_bw = self.gofer_channel.streaming_bandwidth()
        return IoProfile(
            per_request_latency_s=self.gofer_channel.operation_latency(4096)
            * self._interception_factor(),
            read_efficiency=min(1.0, gofer_bw / nvme_read),
            write_efficiency=min(1.0, 0.88 * gofer_bw / nvme_read),
            read_std=0.06,
            write_std=0.08,
            guest_page_cache=True,
            # Section 3.3: gVisor's reads stayed cached even after dropping
            # both host and guest caches — O_DIRECT cannot be honoured.
            honors_o_direct_end_to_end=False,
        )

    def net_profile(self) -> NetProfile:
        return NetProfile(
            path=NetstackPath(),
            stack=GvisorNetstack(),
            path_cost_factor=self._interception_factor(),
            latency_std=0.08,
        )

    def boot_phases(self) -> list[BootPhase]:
        return [
            BootPhase("runsc-init", ms(18.0), rel_std=0.10),
            BootPhase("namespaces", self.namespaces.creation_cost(), rel_std=0.15),
            BootPhase("cgroups", self.cgroups.setup_cost(), rel_std=0.15),
            BootPhase("rootfs-mount", ms(28.0), rel_std=0.12),
            BootPhase("veth-bridge-attach", ms(26.0), rel_std=0.15),
            BootPhase("sentry-start", ms(52.0), rel_std=0.09),
            BootPhase("gofer-start", ms(24.0), rel_std=0.10),
            BootPhase(
                "platform-init" if self.kvm_platform else "ptrace-attach",
                ms(17.0) if self.kvm_platform else ms(29.0),
                rel_std=0.10,
            ),
            BootPhase("payload-exit", ms(1.5), rel_std=0.2),
            BootPhase("teardown", ms(21.0), rel_std=0.15),
        ]

    def syscall_overhead_factor(self) -> float:
        # Every application syscall traps into the Sentry; syscall-heavy
        # workloads (MySQL, memcached) pay this continuously.
        return 1.8 * (1.0 if self.kvm_platform else 1.4)

    def packet_rate_capacity(self) -> float:
        # Netstack + the Sentry endpoint cap small-packet rates early.
        return 350_000.0

    def oltp_capacity_factor(self) -> float:
        return 0.9

    def capabilities(self) -> Capabilities:
        return Capabilities(direct_io_measurable=False)

    def isolation_mechanisms(self) -> list[str]:
        mechanisms = [f"namespace:{kind.value}" for kind in sorted(
            self.namespaces.kinds, key=lambda k: k.value)]
        mechanisms.extend(
            [
                "cgroups-v1",
                "sentry-syscall-interception",
                "sentry-seccomp-allowlist",
                "gofer-io-proxy",
            ]
        )
        if self.kvm_platform:
            mechanisms.append("hardware-virtualization")
        return mechanisms

    def hap_profile_name(self) -> str:
        return "gvisor"

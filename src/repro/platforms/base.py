"""Platform abstraction: what every isolation platform must describe.

A platform is characterized by *profiles*, one per subsystem the paper
benchmarks. Profiles are built by composing the substrate models (virtio
queues, 9p channels, net paths, schedulers, guest images), so platform
differences are architectural rather than hard-coded outcomes:

* :class:`CpuProfile`     — scheduler + instruction-handling overheads (Fig 5)
* :class:`MemoryProfile`  — nested paging, VMM memory-path factors (Figs 6-8)
* :class:`IoProfile`      — the storage stack: request overheads + caps (Figs 9-10)
* :class:`NetProfile`     — datapath + guest network stack (Figs 11-12)
* :class:`BootPhase` list — the startup sequence (Figs 13-15)
* capabilities            — which benchmarks the platform can run at all

Workloads consume profiles; the benchmark suite iterates platforms.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.hardware.topology import Machine, paper_testbed
from repro.kernel.netdev import NetPath
from repro.kernel.netstack import NetStack
from repro.kernel.sched import ThreadScheduler
from repro.rng import RngStream

__all__ = [
    "PlatformFamily",
    "CpuProfile",
    "MemoryProfile",
    "IoProfile",
    "NetProfile",
    "BootPhase",
    "Capabilities",
    "Platform",
]


class PlatformFamily(enum.Enum):
    """The four architecture families of Section 2, plus bare metal."""

    NATIVE = "native"
    CONTAINER = "container"
    HYPERVISOR = "hypervisor"
    SECURE_CONTAINER = "secure_container"
    UNIKERNEL = "unikernel"


@dataclass(frozen=True)
class CpuProfile:
    """Compute-side behaviour.

    ``simd_overhead_factor`` > 1 models costly SIMD state handling in
    experimental platforms; ``scalar_overhead_factor`` stays 1.0 everywhere
    because guest code executes natively (Finding 1).
    """

    scheduler: ThreadScheduler
    vcpus: int
    simd_overhead_factor: float = 1.0
    scalar_overhead_factor: float = 1.0
    run_to_run_std: float = 0.012

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError("vcpus must be >= 1")
        if self.simd_overhead_factor < 1.0 or self.scalar_overhead_factor < 1.0:
            raise ConfigurationError("overhead factors must be >= 1")


@dataclass(frozen=True)
class MemoryProfile:
    """Memory-subsystem behaviour.

    * ``nested_paging``         — pays two-dimensional page walks on TLB miss;
    * ``direct_mapped``         — NVDIMM/KSM-style direct host mapping that
      bypasses the nested penalty (Kata, Finding 3);
    * ``dram_latency_factor``   — multiplier on the above-L1 latency portion
      (the vm-memory-crate effect, Finding 4);
    * ``bandwidth_factor``      — multiplier on sequential copy bandwidth;
    * ``latency_std``           — run-to-run dispersion of latency results.
    """

    nested_paging: bool = False
    direct_mapped: bool = False
    dram_latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    stream_bandwidth_factor: float | None = None
    latency_std: float = 0.03
    bandwidth_std: float = 0.02
    supports_hugepages: bool = True

    def __post_init__(self) -> None:
        if self.dram_latency_factor < 1.0:
            raise ConfigurationError("latency factor must be >= 1")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigurationError("bandwidth factor must be in (0, 1]")

    @property
    def effective_nested(self) -> bool:
        """Whether nested-paging penalties actually apply."""
        return self.nested_paging and not self.direct_mapped

    @property
    def effective_stream_factor(self) -> float:
        """STREAM-specific bandwidth factor (defaults to the general one)."""
        if self.stream_bandwidth_factor is not None:
            return self.stream_bandwidth_factor
        return self.bandwidth_factor


@dataclass(frozen=True)
class IoProfile:
    """Block-storage stack behaviour.

    ``per_request_latency_s`` is the *added* latency for one un-batched
    random request versus issuing it natively; ``read/write_efficiency``
    cap streaming throughput; ``guest_page_cache`` and ``host_page_cache``
    flag which caches sit on the path (the Section 3.3 pitfall);
    ``honors_o_direct_end_to_end`` is False for networked filesystems whose
    reads may still be served from a cache that ``direct=1`` cannot bypass
    (gVisor's exclusion from Figure 10).
    """

    per_request_latency_s: float
    read_efficiency: float
    write_efficiency: float
    write_std: float = 0.04
    read_std: float = 0.02
    latency_std: float = 0.05
    guest_page_cache: bool = False
    host_page_cache: bool = True
    honors_o_direct_end_to_end: bool = True

    def __post_init__(self) -> None:
        if self.per_request_latency_s < 0:
            raise ConfigurationError("per-request latency must be >= 0")
        for eff in (self.read_efficiency, self.write_efficiency):
            if not 0.0 < eff <= 1.0:
                raise ConfigurationError("efficiencies must be in (0, 1]")


@dataclass(frozen=True)
class NetProfile:
    """Network datapath + stack behaviour."""

    path: NetPath
    stack: NetStack
    #: Multiplier (< 1 is a discount) on the datapath's per-packet cost;
    #: models e.g. OSv's syscall-free poll-mode virtio driver.
    path_cost_factor: float = 1.0
    #: Separate multiplier for the latency contribution; defaults to
    #: ``path_cost_factor`` when left as None (batching tricks help
    #: throughput more than they help a single round trip).
    path_latency_factor: float | None = None
    throughput_std: float = 0.015
    latency_std: float = 0.05

    def per_packet_cost(self) -> float:
        """Guest-side per-MTU-segment CPU cost (stack + datapath)."""
        return (
            self.stack.effective_per_segment_cost()
            + self.path.per_packet_cost() * self.path_cost_factor
        )

    def added_latency(self) -> float:
        """One-way latency the path and stack add to a request/response."""
        factor = (
            self.path_latency_factor
            if self.path_latency_factor is not None
            else self.path_cost_factor
        )
        return self.path.added_latency() * factor + self.stack.per_message_cost_s


@dataclass(frozen=True)
class BootPhase:
    """One stage of a platform's startup sequence."""

    name: str
    mean_s: float
    rel_std: float = 0.08
    #: Probability of a heavy-tail hiccup, adding a Pareto-distributed delay.
    tail_probability: float = 0.01

    def __post_init__(self) -> None:
        if self.mean_s < 0:
            raise ConfigurationError(f"{self.name}: negative duration")

    def sample(self, rng: RngStream) -> float:
        """Draw one realization of this phase's duration."""
        duration = self.mean_s * rng.lognormal_factor(self.rel_std)
        duration += rng.pareto_tail(self.tail_probability, 0.12 * self.mean_s)
        return duration


@dataclass(frozen=True)
class Capabilities:
    """What the platform can run (the paper's exclusions, as data)."""

    attach_extra_drives: bool = True
    libaio: bool = True
    hugepages: bool = True
    multi_process: bool = True
    direct_io_measurable: bool = True

    def require(self, capability: str) -> None:
        """Raise :class:`UnsupportedOperationError` if a capability is absent."""
        if not getattr(self, capability):
            raise UnsupportedOperationError(f"platform lacks capability: {capability}")


class Platform(abc.ABC):
    """Base class for all isolation platforms."""

    #: Registry key; subclasses set this.
    name: str = ""
    #: Pretty name used in figures (matches the paper's labels).
    label: str = ""
    family: PlatformFamily = PlatformFamily.NATIVE

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else paper_testbed()
        if not self.name:
            raise ConfigurationError(f"{type(self).__name__} must define a name")
        if not self.label:
            self.label = self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

    # --- profiles -------------------------------------------------------------

    @abc.abstractmethod
    def cpu_profile(self) -> CpuProfile:
        """Compute behaviour for the CPU benchmarks."""

    @abc.abstractmethod
    def memory_profile(self) -> MemoryProfile:
        """Memory behaviour for tinymembench/STREAM."""

    @abc.abstractmethod
    def io_profile(self) -> IoProfile:
        """Storage behaviour for fio (raises when the platform is excluded)."""

    @abc.abstractmethod
    def net_profile(self) -> NetProfile:
        """Network behaviour for iperf3/netperf."""

    @abc.abstractmethod
    def boot_phases(self) -> list[BootPhase]:
        """The startup sequence for the boot-time experiments."""

    def capabilities(self) -> Capabilities:
        """Default: everything supported (containers/native)."""
        return Capabilities()

    # --- security --------------------------------------------------------------

    def isolation_mechanisms(self) -> list[str]:
        """Independent isolation barriers, for the defense-in-depth audit."""
        return []

    def hap_profile_name(self) -> str:
        """Key into :mod:`repro.security.profiles` (defaults to ``name``)."""
        return self.name

    # --- application-level hooks -------------------------------------------------

    def syscall_overhead_factor(self) -> float:
        """Multiplier on the CPU cost of syscall-heavy application code.

        1.0 for platforms where syscalls run at native cost (containers,
        hypervisor guests); > 1 where every syscall is intercepted (gVisor's
        Sentry); < 1 where syscalls are plain function calls (OSv).
        """
        return 1.0

    def packet_rate_capacity(self) -> float | None:
        """Max sustained small-message packets/second across the boundary.

        ``None`` means the boundary is never the bottleneck. Platforms whose
        request path crosses virtqueues/agents per packet saturate earlier —
        the mechanism behind Kata's surprisingly low memcached score
        (Finding 18).
        """
        return None

    def oltp_capacity_factor(self) -> float:
        """Multiplier on peak OLTP transaction capacity (Finding 22)."""
        return 1.0

    # --- derived ---------------------------------------------------------------

    def shutdown_cost_fraction(self) -> float:
        """Process-termination share of end-to-end boot time (Finding 16)."""
        return 0.015

    def boot_time_mean(self) -> float:
        """Deterministic sum of phase means (useful for quick comparisons)."""
        return sum(phase.mean_s for phase in self.boot_phases())

    def sample_boot(self, rng: RngStream) -> float:
        """One end-to-end (process creation to termination) boot sample."""
        return sum(phase.sample(rng.child(phase.name)) for phase in self.boot_phases())

"""gVisor's syscall-interception platforms (Section 2.3.2).

gVisor stops guest syscalls from reaching the host through a *platform*:

* **ptrace** — the Sentry attaches with ``PTRACE_SYSEMU``: every guest
  syscall raises a trap that the host kernel converts into a signal
  delivery to the Sentry's tracer thread, which emulates the call and
  resumes the tracee. Two full context switches per syscall make this
  "relatively high context-switch penalty" path expensive.
* **KVM** — the guest runs as a KVM VM; a syscall traps to the Sentry
  via a lightweight VM exit, and address-space switches use hardware
  support instead of ``mmap`` tricks.

The model prices both pipelines from their primitive steps so the
platform factor gVisor applies to syscall-heavy workloads is *derived*,
not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.kernel.kvm import ExitReason, KvmModule
from repro.kernel.syscalls import MODE_SWITCH_COST, Syscall
from repro.units import us

__all__ = ["InterceptionPlatform", "PtracePlatform", "KvmPlatform"]


@dataclass(frozen=True)
class InterceptionPlatform:
    """One gVisor platform: the per-syscall interception pipeline."""

    name: str
    #: Host-kernel work to stop the guest and notify the Sentry.
    trap_cost_s: float
    #: Context/world switches per intercepted syscall (round trip).
    switch_count: int
    #: Cost of one switch on this pipeline.
    switch_cost_s: float
    #: Sentry-side emulation bookkeeping (task state, rseq, etc.).
    sentry_dispatch_s: float

    def __post_init__(self) -> None:
        if self.switch_count < 0:
            raise ConfigurationError("switch count must be non-negative")

    def interception_cost(self) -> float:
        """Added cost per guest syscall versus a native syscall."""
        return (
            self.trap_cost_s
            + self.switch_count * self.switch_cost_s
            + self.sentry_dispatch_s
        )

    def effective_syscall_cost(self, syscall: Syscall) -> float:
        """Total cost of one guest syscall handled by the Sentry.

        The Sentry *emulates* the call, so the host in-kernel service time
        is replaced by Sentry work of comparable size for the common calls
        the model cares about; the dominant difference is interception.
        """
        return syscall.total_cost_s + self.interception_cost()

    def overhead_factor(self, syscall: Syscall) -> float:
        """Slowdown versus executing the same syscall natively."""
        return self.effective_syscall_cost(syscall) / syscall.total_cost_s


def PtracePlatform() -> InterceptionPlatform:
    """PTRACE_SYSEMU interception: signal delivery + scheduler round trips."""
    return InterceptionPlatform(
        name="ptrace",
        trap_cost_s=us(1.6),       # SIGTRAP generation + tracer wakeup
        switch_count=4,            # tracee->kernel->tracer and back again
        switch_cost_s=us(1.2),     # full context switch via the scheduler
        sentry_dispatch_s=us(0.7),
    )


def KvmPlatform() -> InterceptionPlatform:
    """KVM interception: a lightweight VM exit into the Sentry."""
    exit_cost = KvmModule.exit_cost(ExitReason.IO, to_userspace=False)
    return InterceptionPlatform(
        name="kvm",
        trap_cost_s=exit_cost,
        switch_count=2,            # world switch out and back
        switch_cost_s=MODE_SWITCH_COST,
        sentry_dispatch_s=us(0.7),
    )

"""Isolation platform models and registry.

``get_platform(name)`` constructs any of the studied configurations;
``PLATFORM_SETS`` groups them the way the paper's figures do (each figure
excludes the platforms that cannot run its workload).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.hardware.topology import Machine
from repro.platforms.base import (
    BootPhase,
    Capabilities,
    CpuProfile,
    IoProfile,
    MemoryProfile,
    NetProfile,
    Platform,
    PlatformFamily,
)
from repro.platforms.cloud_hypervisor import CloudHypervisorPlatform
from repro.platforms.docker import DockerPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.gvisor import GvisorPlatform
from repro.platforms.kata import KataPlatform
from repro.platforms.lxc import LxcPlatform
from repro.platforms.native import NativePlatform
from repro.platforms.osv import OsvPlatform
from repro.platforms.qemu import QemuMachineModel, QemuPlatform

__all__ = [
    "Platform",
    "PlatformFamily",
    "CpuProfile",
    "MemoryProfile",
    "IoProfile",
    "NetProfile",
    "BootPhase",
    "Capabilities",
    "NativePlatform",
    "DockerPlatform",
    "LxcPlatform",
    "QemuPlatform",
    "QemuMachineModel",
    "FirecrackerPlatform",
    "CloudHypervisorPlatform",
    "KataPlatform",
    "GvisorPlatform",
    "OsvPlatform",
    "get_platform",
    "platform_names",
    "PLATFORM_SETS",
]

_FACTORIES: dict[str, Callable[..., Platform]] = {
    "native": NativePlatform,
    "docker": DockerPlatform,
    "docker-oci": lambda machine=None: DockerPlatform(machine, via_daemon=False),
    "lxc": LxcPlatform,
    "lxc-unprivileged": lambda machine=None: LxcPlatform(machine, unprivileged=True),
    "qemu": QemuPlatform,
    "qemu-qboot": lambda machine=None: QemuPlatform(
        machine, machine_model=QemuMachineModel.QBOOT
    ),
    "qemu-microvm": lambda machine=None: QemuPlatform(
        machine, machine_model=QemuMachineModel.MICROVM
    ),
    "firecracker": FirecrackerPlatform,
    "cloud-hypervisor": CloudHypervisorPlatform,
    "kata": KataPlatform,
    "kata-virtiofs": lambda machine=None: KataPlatform(machine, rootfs_transport="virtiofs"),
    "gvisor": GvisorPlatform,
    "gvisor-ptrace": lambda machine=None: GvisorPlatform(machine, kvm_platform=False),
    "osv": OsvPlatform,
    "osv-fc": lambda machine=None: OsvPlatform(machine, hypervisor="firecracker"),
    "osv-qemu-microvm": lambda machine=None: OsvPlatform(
        machine, qemu_machine_model=QemuMachineModel.MICROVM
    ),
}


def platform_names() -> list[str]:
    """All registered platform configuration names."""
    return sorted(_FACTORIES)


def get_platform(name: str, machine: Machine | None = None) -> Platform:
    """Construct a platform by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(platform_names())
        raise ConfigurationError(f"unknown platform {name!r}; known: {known}") from None
    return factory(machine) if machine is not None else factory()


#: Figure-by-figure platform rosters (the paper's exclusions, Section 3).
PLATFORM_SETS: dict[str, list[str]] = {
    # Figure 5 / CPU: everything.
    "cpu": [
        "native", "docker", "lxc", "qemu", "firecracker", "cloud-hypervisor",
        "kata", "gvisor", "osv",
    ],
    # Figures 6-8 / memory: everything incl. the OSv-FC contrast.
    "memory": [
        "native", "docker", "lxc", "qemu", "firecracker", "cloud-hypervisor",
        "kata", "gvisor", "osv", "osv-fc",
    ],
    # Figure 9 / fio throughput: no Firecracker (extra drives), no OSv (libaio).
    "io_throughput": [
        "native", "docker", "lxc", "qemu", "cloud-hypervisor", "kata", "gvisor",
    ],
    # Figure 10 / fio latency: additionally no gVisor (uncircumventable cache).
    "io_latency": [
        "native", "docker", "lxc", "qemu", "cloud-hypervisor", "kata",
    ],
    # Figures 11-12 / network: everything incl. OSv-FC.
    "network": [
        "native", "docker", "lxc", "qemu", "firecracker", "cloud-hypervisor",
        "kata", "gvisor", "osv", "osv-fc",
    ],
    # Figure 13 / container startup: OCI and daemon variants.
    "container_boot": [
        "docker", "docker-oci", "gvisor", "kata", "lxc",
    ],
    # Figure 14 / hypervisor startup: same Linux kernel + rootfs everywhere.
    "hypervisor_boot": [
        "qemu", "qemu-qboot", "qemu-microvm", "firecracker", "cloud-hypervisor",
    ],
    # Figure 15 / OSv startup under its supported hypervisors.
    "osv_boot": [
        "osv", "osv-fc", "osv-qemu-microvm",
    ],
    # Figures 16-17 / applications.
    "applications": [
        "native", "docker", "lxc", "qemu", "firecracker", "cloud-hypervisor",
        "kata", "gvisor", "osv",
    ],
    # Figure 18 / HAP.
    "security": [
        "native", "docker", "lxc", "qemu", "firecracker", "cloud-hypervisor",
        "kata", "gvisor", "osv",
    ],
}

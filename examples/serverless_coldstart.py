#!/usr/bin/env python3
"""Serverless cold-start study: which isolation platform for FaaS?

The paper's Section 3.5 motivates startup time with serverless computing:
"regions of isolation need to be spawned and despawned quickly". This
example runs the startup experiment across every platform family, adds
the per-invocation amortization math for a FaaS operator, and prints a
recommendation table — including the paper's two surprises (Firecracker's
end-to-end boot is the slowest of the hypervisors; QEMU's microvm machine
model makes things worse, Finding 14).

Usage::

    python examples/serverless_coldstart.py [seed]
"""

from __future__ import annotations

import sys

from repro.core.stats import percentile
from repro.platforms import get_platform
from repro.rng import RngStream
from repro.workloads.startup import StartupWorkload

#: Platforms a FaaS operator would shortlist, with the isolation family.
CANDIDATES = [
    ("docker-oci", "container (runc, direct OCI)"),
    ("docker", "container (via dockerd)"),
    ("gvisor", "secure container (Sentry)"),
    ("kata", "secure container (VM-backed)"),
    ("cloud-hypervisor", "microVM (Rust, PVH boot)"),
    ("firecracker", "microVM (AWS)"),
    ("qemu-microvm", "microVM (QEMU uVM)"),
    ("osv-fc", "unikernel on Firecracker"),
]

#: Function budget: a cold start should stay under this share of a
#: typical 1-second invocation.
INVOCATION_S = 1.0


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = RngStream(seed, "serverless")
    workload = StartupWorkload(startups=120)

    print("Serverless cold-start comparison (120 startups each)")
    print(f"{'platform':<18} {'family':<32} {'p50':>8} {'p99':>8}  overhead@1s")
    print("-" * 86)

    rows = []
    for name, family in CANDIDATES:
        platform = get_platform(name)
        result = workload.run(platform, rng.child(name))
        samples = [s * 1e3 for s in result.samples_s]
        p50 = percentile(samples, 50)
        p99 = percentile(samples, 99)
        overhead = p50 / 1e3 / INVOCATION_S
        rows.append((name, family, p50, p99, overhead))
        print(f"{name:<18} {family:<32} {p50:>6.0f}ms {p99:>6.0f}ms  {overhead:8.1%}")

    print()
    fastest = min(rows, key=lambda r: r[2])
    strongest_fast = min(
        (r for r in rows if r[0] in ("gvisor", "kata", "osv-fc", "cloud-hypervisor")),
        key=lambda r: r[2],
    )
    print(f"Fastest cold start overall:     {fastest[0]} ({fastest[2]:.0f} ms p50)")
    print(
        f"Fastest with a hard boundary:   {strongest_fast[0]} "
        f"({strongest_fast[2]:.0f} ms p50)"
    )
    print()
    print("Paper cross-checks reproduced here:")
    by_name = {r[0]: r for r in rows}
    print(
        f"  - Firecracker p50 {by_name['firecracker'][2]:.0f} ms is NOT the "
        f"fastest microVM (Cloud Hypervisor: {by_name['cloud-hypervisor'][2]:.0f} ms)."
    )
    print(
        f"  - The Docker daemon adds ~"
        f"{by_name['docker'][2] - by_name['docker-oci'][2]:.0f} ms over direct OCI."
    )
    print(
        f"  - A unikernel image flips the odds: OSv on Firecracker starts in "
        f"{by_name['osv-fc'][2]:.0f} ms."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

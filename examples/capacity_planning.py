#!/usr/bin/env python3
"""Capacity planning: sizing a caching tier and a database tier.

Uses the paper's two application benchmarks as sizing models: how many
memcached instances (YCSB workload-a) and how many MySQL instances
(sysbench oltp_read_write at its best thread count) each isolation
platform needs to serve a target load — turning the Figure 16/17
differences into machine counts an operator can compare against the
platforms' isolation guarantees.

Usage::

    python examples/capacity_planning.py [seed]
"""

from __future__ import annotations

import math
import sys

from repro.platforms import get_platform
from repro.rng import RngStream
from repro.workloads.memcached import MemcachedYcsbWorkload
from repro.workloads.mysql import MysqlOltpWorkload

PLATFORMS = [
    "native", "docker", "lxc", "qemu", "firecracker",
    "cloud-hypervisor", "kata", "gvisor", "osv",
]

TARGET_CACHE_OPS = 2_000_000.0  # ops/s across the caching tier
TARGET_DB_TPS = 40_000.0        # transactions/s across the DB tier


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = RngStream(seed, "capacity")
    memcached = MemcachedYcsbWorkload(ops_per_client=60)
    mysql = MysqlOltpWorkload()

    print(f"Target load: {TARGET_CACHE_OPS:,.0f} cache ops/s, {TARGET_DB_TPS:,.0f} DB tps")
    print()
    header = (
        f"{'platform':<18} {'cache ops/s':>12} {'cache nodes':>12} "
        f"{'peak tps':>10} {'@thr':>5} {'db nodes':>9}"
    )
    print(header)
    print("-" * len(header))

    rows = []
    for name in PLATFORMS:
        platform = get_platform(name)
        cache = memcached.run(platform, rng.child(f"mc/{name}"))
        oltp = mysql.run(platform, rng.child(f"db/{name}"))
        threads, peak_tps = oltp.peak()
        cache_nodes = math.ceil(TARGET_CACHE_OPS / cache.throughput_ops_per_s)
        db_nodes = math.ceil(TARGET_DB_TPS / peak_tps)
        rows.append((name, cache_nodes, db_nodes))
        print(
            f"{name:<18} {cache.throughput_ops_per_s:>12,.0f} {cache_nodes:>12} "
            f"{peak_tps:>10,.0f} {threads:>5.0f} {db_nodes:>9}"
        )

    print()
    baseline = next(r for r in rows if r[0] == "docker")
    print("Overhead vs Docker (extra machines for the same load):")
    for name, cache_nodes, db_nodes in rows:
        if name == "docker":
            continue
        delta_cache = cache_nodes - baseline[1]
        delta_db = db_nodes - baseline[2]
        print(f"  {name:<18} cache {delta_cache:+d} nodes, db {delta_db:+d} nodes")
    print()
    print("Reading: the isolation premium is workload-shaped — secure")
    print("containers are cheap for CPU-bound fleets but cost real machines")
    print("on I/O- and network-heavy tiers (Conclusions 1-3).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Security audit: HAP width vs. defense-in-depth, per platform.

Reproduces the paper's Section 4 analysis: trace the host-kernel functions
each platform exercises across five workloads, weigh them with EPSS
exploit likelihoods, and contrast the resulting *horizontal* attack
profile with the *vertical* isolation depth the HAP cannot see
(Finding 28).

Usage::

    python examples/security_audit.py
"""

from __future__ import annotations

from repro.kernel.functions import KernelFunctionCatalog
from repro.platforms import get_platform
from repro.security.analysis import audit_platform
from repro.security.epss import EpssModel
from repro.security.hap import measure_hap

PLATFORMS = [
    "native", "docker", "lxc", "qemu", "firecracker",
    "cloud-hypervisor", "kata", "gvisor", "osv",
]


def main() -> int:
    catalog = KernelFunctionCatalog()
    epss = EpssModel()

    print(f"Host-kernel function catalog: {len(catalog)} traceable functions")
    print()
    print(f"{'platform':<18} {'HAP':>6} {'EPSS-weighted':>14} {'depth':>7}  top subsystems")
    print("-" * 90)

    audits = []
    for name in PLATFORMS:
        platform = get_platform(name)
        score = measure_hap(platform, catalog, epss)
        audit = audit_platform(platform, score)
        audits.append((name, score, audit))
        top = ", ".join(
            f"{subsystem.value}:{count}"
            for subsystem, count in score.riskiest_subsystems(3)
        )
        print(
            f"{name:<18} {score.unique_functions:>6} "
            f"{score.weighted_score:>14.1f} {audit.depth_score:>7.1f}  {top}"
        )

    print()
    by_hap = sorted(audits, key=lambda a: a[1].unique_functions)
    print(f"Narrowest host interface:  {by_hap[0][0]} "
          f"({by_hap[0][1].unique_functions} functions — Finding 27)")
    print(f"Widest host interface:     {by_hap[-1][0]} "
          f"({by_hap[-1][1].unique_functions} functions — Finding 24)")

    print()
    print("The Finding 28 caveat, quantified:")
    kata = next(a for a in audits if a[0] == "kata")
    docker = next(a for a in audits if a[0] == "docker")
    print(
        f"  Kata's HAP ({kata[1].unique_functions}) is wider than Docker's "
        f"({docker[1].unique_functions}), yet Kata layers "
        f"{kata[2].layers} isolation mechanisms (depth {kata[2].depth_score:.1f}) "
        f"against Docker's {docker[2].layers} (depth {docker[2].depth_score:.1f})."
    )
    print("  The HAP measures width, not depth: secure containers buy their")
    print("  security as defense-in-depth, not as a narrower interface.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

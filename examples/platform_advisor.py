#!/usr/bin/env python3
"""Platform advisor: which isolation platform for *your* workload?

The paper's stated goal is to "help practitioners to make educated
decisions on the best isolation platform for their given problem"
(Section 1). This example drives the :class:`repro.core.advisor`
API across four archetypal workloads and prints ranked recommendations —
each derived from the reproduced figures, not intuition.

Usage::

    python examples/platform_advisor.py
"""

from __future__ import annotations

from repro.core.advisor import PlatformAdvisor, WorkloadNeeds

SCENARIOS = [
    (
        "Serverless function frontend",
        "bursty, latency-sensitive startup; light I/O",
        WorkloadNeeds(cpu=0.3, memory=0.2, disk=0.1, network=0.5,
                      startup=1.0, isolation=0.6),
    ),
    (
        "Multi-tenant CI build farm",
        "CPU-heavy, untrusted code, moderate disk",
        WorkloadNeeds(cpu=1.0, memory=0.5, disk=0.5, network=0.1,
                      startup=0.3, isolation=0.9),
    ),
    (
        "In-memory cache tier",
        "network- and memory-bound, trusted workload",
        WorkloadNeeds(cpu=0.2, memory=0.9, disk=0.0, network=1.0,
                      startup=0.0, isolation=0.2),
    ),
    (
        "Analytics database",
        "disk-throughput dominated with big scans",
        WorkloadNeeds(cpu=0.5, memory=0.6, disk=1.0, network=0.3,
                      startup=0.0, isolation=0.5),
    ),
]


def main() -> int:
    advisor = PlatformAdvisor(seed=42, repetitions=3)

    for title, description, needs in SCENARIOS:
        print(f"## {title} — {description}")
        for rank, recommendation in enumerate(advisor.recommend(needs, top=3), start=1):
            print(f"  {rank}. {recommendation.explain()}")
        print()

    print("Scores are normalized per dimension (1.0 = best candidate) and")
    print("weighted by the scenario; isolation blends HAP interface width")
    print("with defense-in-depth (Finding 28's two axes).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Full reproduction: every figure, every finding, archived to JSON.

Runs the complete evaluation section (Figures 5-18 plus the sysbench
prime control), renders each artefact, evaluates all 28 findings, and
writes the result set to ``results/``.

Usage::

    python examples/full_reproduction.py [seed] [--paper-scale]

``--paper-scale`` uses the paper's repetition counts (10 runs, 300
startups); the default is the quick profile (~1 minute).
"""

from __future__ import annotations

import sys
import time

from repro import BenchmarkSuite


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    seed = int(args[0]) if args else 42
    quick = "--paper-scale" not in sys.argv

    suite = BenchmarkSuite(seed=seed, quick=quick)
    print(suite.describe())
    print(f"profile: {'quick' if quick else 'paper-scale'}")
    print()

    started = time.time()
    for figure_id in suite.figure_ids():
        figure = suite.run_figure(figure_id)
        print(figure.render())
        print()

    print(suite.findings_report())
    print()

    written = suite.save_results("results")
    print(f"Archived {len(written)} JSON files to results/ "
          f"({time.time() - started:.1f}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Density study: how many idle guests fit on the testbed?

Section 1 motivates containers with density; Section 3.2 notes that KSM
buys VM density back at an isolation cost (cross-VM side channels, e.g.
the Irazoqui et al. AES attack the paper cites). This example quantifies
the whole trade: guests per host, the KSM gain, and what each platform's
isolation premium costs in memory.

Usage::

    python examples/density_study.py [app_mib]
"""

from __future__ import annotations

import sys

from repro.core.density import DensityModel
from repro.platforms import get_platform
from repro.units import MIB

PLATFORMS = [
    "native", "docker", "lxc", "gvisor", "firecracker",
    "cloud-hypervisor", "osv-fc", "kata", "qemu",
]


def main() -> int:
    app_mib = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    model = DensityModel(app_bytes=app_mib * MIB)

    print(f"Idle-guest density on {model.machine.describe()}")
    print(f"Application footprint: {app_mib} MiB per guest")
    print()
    print(f"{'platform':<18} {'per-guest':>10} {'guests':>8} {'+KSM':>8} {'KSM gain':>9}")
    print("-" * 60)

    rows = []
    for name in PLATFORMS:
        platform = get_platform(name)
        footprint = model.footprint(platform)
        guests = model.max_guests(platform)
        with_ksm = model.max_guests(platform, ksm=True)
        gain = model.ksm_density_gain(platform)
        rows.append((name, guests, with_ksm))
        per_guest_mib = (footprint.total_bytes + model.app_bytes) / MIB
        print(
            f"{name:<18} {per_guest_mib:>8.0f}Mi {guests:>8,} {with_ksm:>8,} "
            f"{gain:>8.1%}"
        )

    print()
    docker = next(r for r in rows if r[0] == "docker")
    qemu = next(r for r in rows if r[0] == "qemu")
    kata = next(r for r in rows if r[0] == "kata")
    print(f"Container density advantage over full VMs: "
          f"{docker[1] / qemu[1]:.1f}x (Docker vs QEMU)")
    print(f"The 'secure container' premium: Kata hosts {kata[1]:,} guests "
          f"where Docker hosts {docker[1]:,}.")
    print()
    print("Caveat from the paper (Section 3.2): KSM's density gain weakens")
    print("the isolation boundary between co-resident tenants.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Quickstart: run two headline experiments and print the paper-style rows.

Usage::

    python examples/quickstart.py [seed]

This reproduces Figure 11 (iperf3 network throughput) and Figure 13
(container startup CDF) on the simulated dual-EPYC testbed, then renders
them as ASCII tables — the same rows the paper plots.
"""

from __future__ import annotations

import sys

from repro import BenchmarkSuite


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    suite = BenchmarkSuite(seed=seed, quick=True)

    print(suite.describe())
    print()

    iperf = suite.run_figure("fig11")
    print(iperf.render())
    print()

    native = iperf.row("native").summary.mean
    print("Relative network throughput (native = 100%):")
    for row in sorted(iperf.rows, key=lambda r: r.summary.mean, reverse=True):
        print(f"  {row.label:<18} {100 * row.summary.mean / native:6.1f}%")
    print()

    boot = suite.run_figure("fig13")
    print(boot.render())
    print()
    print("Key takeaway: containers start in ~100 ms while a Kata container")
    print("pays for namespaces + a hypervisor boot + the agent handshake,")
    print("and LXC pays for a full systemd (Finding 13).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark: Figure 11 — iperf3 TCP throughput.

Paper rows: native 37.28 Gbit/s; OSv 36.36 (a 25.7 % gain over plain
QEMU, but only 6.53 % for OSv-FC over Firecracker); bridges lose ~9-10 %;
TAP+virtio hypervisors ~25 %; Cloud Hypervisor worse; gVisor the extreme
outlier.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig11_iperf


def test_fig11_iperf(benchmark, seed):
    figure = run_once(benchmark, fig11_iperf, seed, repetitions=5)
    print()
    print(figure.render())
    native = figure.row("native").summary.mean
    assert 35.5 < native < 39.0
    assert figure.row("osv").summary.mean > 0.95 * native
    assert 0.86 < figure.row("docker").summary.mean / native < 0.95
    assert 0.68 < figure.row("qemu").summary.mean / native < 0.82
    osv_gain = figure.row("osv").summary.mean / figure.row("qemu").summary.mean
    fc_gain = figure.row("osv-fc").summary.mean / figure.row("firecracker").summary.mean
    assert osv_gain > 1.18 and fc_gain < 1.12
    assert figure.row("gvisor").summary.mean < 0.15 * native
    assert figure.row("cloud-hypervisor").summary.mean == min(
        figure.row(p).summary.mean
        for p in ("qemu", "firecracker", "cloud-hypervisor")
    )

"""Benchmark: Figure 13 — container startup CDF (300 startups).

Paper rows: Docker ~100 ms (OCI), gVisor ~190 ms, Kata ~600 ms, LXC
~800 ms; the Docker daemon adds ~250 ms over direct OCI invocation.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig13_container_boot


def test_fig13_container_boot(benchmark, seed):
    figure = run_once(benchmark, fig13_container_boot, seed, startups=300)
    print()
    print(figure.render())
    means = {r.platform: r.summary.mean for r in figure.rows}
    assert means["docker-oci"] < means["gvisor"] < means["kata"] < means["lxc"]
    assert 70 < means["docker-oci"] < 160
    assert 140 < means["gvisor"] < 260
    assert 450 < means["kata"] < 750
    assert 650 < means["lxc"] < 1000
    assert 180 < means["docker"] - means["docker-oci"] < 330

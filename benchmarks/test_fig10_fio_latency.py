"""Benchmark: Figure 10 — fio 4 KiB randread latency.

Paper shape: Kata (9p) is exceptionally poor; Cloud Hypervisor is
remarkably good for a hypervisor; gVisor is excluded (uncircumventable
caching).
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig10_fio_latency


def test_fig10_fio_latency(benchmark, seed):
    figure = run_once(benchmark, fig10_fio_latency, seed, repetitions=10)
    print()
    print(figure.render())
    assert "gvisor" not in figure.platforms()
    ranking = figure.ranking(ascending=False)
    assert ranking[0] == "kata"
    assert figure.row("cloud-hypervisor").summary.mean < figure.row("qemu").summary.mean
    # Native sits at (or within noise of) the latency floor.
    floor = min(r.summary.mean for r in figure.rows)
    assert figure.row("native").summary.mean < 1.05 * floor


def test_fig10_kata_virtiofs_ablation(benchmark, seed):
    figure = run_once(
        benchmark,
        fig10_fio_latency,
        seed,
        repetitions=5,
        platforms=["qemu", "kata", "kata-virtiofs"],
    )
    print()
    print(figure.render())
    assert (
        figure.row("kata-virtiofs").summary.mean
        < 0.6 * figure.row("kata").summary.mean
    )

"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_figNN_*.py`` regenerates one paper artefact and
prints the same rows/series the paper reports, so ``pytest benchmarks/
--benchmark-only`` reproduces the entire evaluation section. Benchmarks
run their figure once per round (pedantic mode) — the interesting output
is the figure content, not the wall-clock of the simulator itself.
"""

from __future__ import annotations

import pytest

SEED = 42


def run_once(benchmark, function, *args, **kwargs):
    """Run a figure function under pytest-benchmark, one round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def seed() -> int:
    """The default reproduction seed."""
    return SEED

"""Benchmark: Figure 8 — STREAM COPY bandwidth.

Paper shape: same platform ranking as the tinymembench throughput figure;
the Firecracker family trails the field.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig08_stream


def test_fig08_stream(benchmark, seed):
    figure = run_once(benchmark, fig08_stream, seed, repetitions=10)
    print()
    print(figure.render())
    slowest_two = figure.ranking(ascending=True)[:2]
    assert set(slowest_two) == {"firecracker", "osv-fc"}
    native = figure.row("native").summary.mean
    assert figure.row("kata").summary.mean > 0.93 * native

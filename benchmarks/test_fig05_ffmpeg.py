"""Benchmark: Figure 5 — ffmpeg re-encode time, plus the prime control.

Paper rows: ~65 s across platforms, OSv the severe outlier; the sysbench
prime control is flat everywhere (Finding 1).
"""

from benchmarks.conftest import run_once
from repro.core.figures import cpu_prime_control, fig05_ffmpeg


def test_fig05_ffmpeg(benchmark, seed):
    figure = run_once(benchmark, fig05_ffmpeg, seed, repetitions=10)
    print()
    print(figure.render())
    osv = figure.row("osv").summary.mean
    others = [r.summary.mean for r in figure.rows if r.platform != "osv"]
    assert osv > 1.25 * max(others)
    assert all(55_000 < value < 78_000 for value in others)


def test_cpu_prime_control(benchmark, seed):
    figure = run_once(benchmark, cpu_prime_control, seed, repetitions=10)
    print()
    print(figure.render())
    means = [r.summary.mean for r in figure.rows]
    assert (max(means) - min(means)) / max(means) < 0.05

"""Benchmark: Figure 15 — OSv boot CDF under its supported hypervisors.

Paper shape: the Figure 14 ordering flips — Firecracker is fastest, QEMU
microvm second, plain QEMU last; the end-to-end and stdout-grep curves
nearly superimpose (Finding 16).
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig15_osv_boot


def test_fig15_osv_boot(benchmark, seed):
    figure = run_once(benchmark, fig15_osv_boot, seed, startups=300)
    print()
    print(figure.render())
    e2e = {
        r.platform.split(":")[0]: r.summary.mean
        for r in figure.rows
        if r.platform.endswith("end-to-end")
    }
    assert e2e["osv-fc"] < e2e["osv-qemu-microvm"] < e2e["osv"]
    for platform in ("osv", "osv-fc", "osv-qemu-microvm"):
        full = figure.row(f"{platform}:end-to-end").summary.mean
        grep = figure.row(f"{platform}:stdout-grep").summary.mean
        assert 0.0 < (full - grep) / full < 0.12

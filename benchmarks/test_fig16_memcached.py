"""Benchmark: Figure 16 — memcached under YCSB workload-a.

Paper shape: regular containers (especially LXC) do very well; newer
hypervisors do worse; Kata surprisingly low (Finding 18); gVisor lowest
(network-bound, Finding 19).
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig16_memcached


def test_fig16_memcached(benchmark, seed):
    figure = run_once(benchmark, fig16_memcached, seed, repetitions=5)
    print()
    print(figure.render())
    means = {r.platform: r.summary.mean for r in figure.rows}
    assert means["firecracker"] < means["qemu"]
    assert means["cloud-hypervisor"] < means["qemu"]
    assert min(means["docker"], means["lxc"]) > max(
        means["qemu"], means["firecracker"], means["cloud-hypervisor"]
    )
    assert means["kata"] < 0.85 * means["docker"]
    assert means["gvisor"] == min(means.values())

"""Extension benchmarks — ablations beyond the paper's headline figures.

These exercise the design choices DESIGN.md calls out: the gVisor
platform choice (ptrace vs KVM), the VMM event-loop architectures, the
YCSB mix sensitivity of Figure 16, unprivileged LXC, and the per-workload
HAP breakdown.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig11_iperf, fig13_container_boot
from repro.kernel.functions import KernelFunctionCatalog
from repro.platforms import get_platform
from repro.platforms.vmm_loop import loop_for
from repro.rng import RngStream
from repro.security.hap import measure_hap_per_workload
from repro.simcore.engine import Simulator, Wait
from repro.units import us
from repro.workloads.memcached import MemcachedYcsbWorkload
from repro.workloads.ycsb import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C


def test_gvisor_platform_ablation(benchmark, seed):
    """gVisor ptrace vs KVM: the KVM platform wins on every subsystem."""
    figure = run_once(
        benchmark,
        fig11_iperf,
        seed,
        repetitions=5,
        platforms=["gvisor", "gvisor-ptrace"],
    )
    print()
    print(figure.render())
    kvm = figure.row("gvisor").summary.mean
    ptrace = figure.row("gvisor-ptrace").summary.mean
    assert kvm > 1.2 * ptrace


def test_lxc_unprivileged_ablation(benchmark, seed):
    """Unprivileged LXC (cgroups v2 + user namespaces) boots about as
    fast as privileged LXC — systemd still dominates."""
    figure = run_once(
        benchmark,
        fig13_container_boot,
        seed,
        startups=100,
        platforms=["lxc", "lxc-unprivileged"],
    )
    print()
    print(figure.render())
    privileged = figure.row("lxc").summary.mean
    unprivileged = figure.row("lxc-unprivileged").summary.mean
    assert abs(unprivileged - privileged) / privileged < 0.1


def test_ycsb_mix_sensitivity(benchmark, seed):
    """Figure 16 under YCSB A/B/C: read-heavier mixes lift throughput but
    preserve the platform ordering."""

    def sweep():
        rng = RngStream(seed, "ycsb-sweep")
        results = {}
        for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C):
            workload = MemcachedYcsbWorkload(spec=spec, ops_per_client=60)
            results[spec.name] = {
                name: workload.run(get_platform(name), rng.child(f"{spec.name}/{name}"))
                for name in ("native", "docker", "kata", "gvisor")
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for mix, rows in results.items():
        line = ", ".join(
            f"{k} {v.throughput_ops_per_s:,.0f}" for k, v in rows.items()
        )
        print(f"{mix}: {line}")
    for mix in results:
        throughputs = {k: v.throughput_ops_per_s for k, v in results[mix].items()}
        assert throughputs["gvisor"] == min(throughputs.values())
        assert throughputs["kata"] < throughputs["docker"]
    # The 50/50 update mix (A) has strictly higher per-op latency than the
    # read-only mix (C); throughput is think-time dominated, so latency is
    # the robust sensitivity signal.
    for name in ("native", "docker"):
        assert (
            results["workload-a"][name].mean_latency_s
            > results["workload-c"][name].mean_latency_s
        )


def test_vmm_event_loop_architectures(benchmark):
    """Dispatch latency of the three VMM loops under a device-event burst."""

    def drive(vmm: str) -> float:
        sim = Simulator()
        loop = loop_for(sim, vmm)

        def poster():
            events = [loop.post("fd", us(2.0)) for _ in range(200)]
            for event in events:
                yield Wait(event)

        sim.run_process(poster())
        return loop.mean_dispatch_latency

    latencies = benchmark.pedantic(
        lambda: {vmm: drive(vmm) for vmm in ("qemu", "firecracker", "cloud-hypervisor")},
        rounds=1,
        iterations=1,
    )
    print()
    for vmm, latency in latencies.items():
        print(f"{vmm}: mean dispatch {latency * 1e6:.1f} us")
    assert all(latency > 0 for latency in latencies.values())


def test_hap_per_workload_breakdown(benchmark):
    """Which workload widens each platform's host interface the most."""
    catalog = KernelFunctionCatalog()

    def breakdown():
        return {
            name: {
                workload: score.unique_functions
                for workload, score in measure_hap_per_workload(
                    get_platform(name), catalog
                ).items()
            }
            for name in ("docker", "qemu", "kata", "gvisor", "osv")
        }

    rows = benchmark.pedantic(breakdown, rounds=1, iterations=1)
    print()
    for name, per_workload in rows.items():
        widest = max(per_workload, key=per_workload.get)
        print(f"{name}: widest under {widest} ({per_workload[widest]} fns) — {per_workload}")
    # The boot/lifecycle trace is what widens Kata beyond a hypervisor.
    assert rows["kata"]["boot-shutdown"] > rows["docker"]["boot-shutdown"]

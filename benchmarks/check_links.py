"""Docs link checker: every relative markdown link must resolve.

Scans README.md and docs/*.md for markdown links, ignores absolute URLs
and pure in-page anchors, and fails (exit 1) listing every relative link
whose target file does not exist. Pure stdlib, no network — this is the
CI step that keeps the docs layer from silently rotting as files move.

Usage::

    python benchmarks/check_links.py            # check the repo's docs
    python benchmarks/check_links.py README.md docs/ARCHITECTURE.md
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown links: [text](target). Deliberately simple — the docs
#: don't use reference-style links or angle-bracketed targets.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not relative file paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_links(path: pathlib.Path) -> list[str]:
    """All inline link targets in one markdown file."""
    return _LINK_PATTERN.findall(path.read_text(encoding="utf-8"))


def broken_links(path: pathlib.Path) -> list[str]:
    """The file's relative link targets that do not resolve on disk."""
    broken = []
    for target in iter_links(path):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        relative = target.split("#", 1)[0]  # strip any fragment
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(target)
    return broken


def default_documents(root: pathlib.Path) -> list[pathlib.Path]:
    """The markdown set the CI step checks."""
    documents = [root / "README.md"]
    documents.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in documents if path.is_file()]


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(__file__).resolve().parents[1]
    documents = (
        [pathlib.Path(argument) for argument in arguments]
        if arguments
        else default_documents(root)
    )
    failures = 0
    for document in documents:
        for target in broken_links(document):
            print(f"{document}: broken link -> {target}")
            failures += 1
    checked = ", ".join(str(d) for d in documents)
    if failures:
        print(f"link check FAILED: {failures} broken link(s) in {checked}")
        return 1
    print(f"link check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Perf trajectory runner: measure the repo's own speed into BENCH_<pr>.json.

Thin launcher around :mod:`repro.core.perf` so the harness can run from a
checkout without installation (CI does exactly this). The interesting
parts — the metrics, the schema, the soft regression gate — live in the
library module; ``repro-bench perf`` is the same code behind the
installed CLI.

Usage::

    python benchmarks/perf_trajectory.py                 # quick mode, BENCH_6.json
    python benchmarks/perf_trajectory.py --full          # production-sized grid
    python benchmarks/perf_trajectory.py --check BENCH_6.json   # schema gate only

See ``docs/PERFORMANCE.md`` for the schema and the CI wiring.
"""

from __future__ import annotations

import pathlib
import sys

# Allow running from a checkout without installation.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.perf import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

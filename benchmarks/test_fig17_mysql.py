"""Benchmark: Figure 17 — MySQL sysbench oltp_read_write, 10..160 threads.

Paper shape: three groups — (1) OSv/OSv-FC flat and severely low, with
gVisor also flat-and-low; (2) Firecracker (and Kata) at roughly half;
(3) the remaining platforms statistically indistinguishable. Guests peak
around 50 threads; native peaks around 110 without a significant edge.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig17_mysql


def test_fig17_mysql(benchmark, seed):
    figure = run_once(benchmark, fig17_mysql, seed, repetitions=3)
    print()
    print(figure.render())
    peaks = {}
    for series in figure.series:
        best = max(range(len(series.y_values)), key=lambda i: series.y_values[i])
        peaks[series.platform] = (series.x_values[best], series.y_values[best])
    # Group 3 top group.
    group = [peaks[p][1] for p in ("docker", "lxc", "qemu")]
    assert all(20 <= peaks[p][0] <= 70 for p in ("docker", "lxc", "qemu"))
    assert peaks["native"][0] >= 70
    assert peaks["native"][1] < 1.3 * max(group)
    # Group 2 at roughly half.
    mean_group = sum(group) / len(group)
    assert 0.35 * mean_group < peaks["firecracker"][1] < 0.7 * mean_group
    assert peaks["kata"][1] < 0.75 * mean_group
    # Group 1 flat and low.
    osv = figure.series_for("osv")
    assert max(osv.y_values) < 0.4 * mean_group
    tail = osv.y_values[3:]
    assert (max(tail) - min(tail)) / max(osv.y_values) < 0.25

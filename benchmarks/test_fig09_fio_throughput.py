"""Benchmark: Figure 9 — fio 128 KiB sequential throughput.

Paper shape: Docker/LXC/QEMU read at native speed; gVisor and Kata reach
at best half; Cloud Hypervisor is the hypervisor outlier; Firecracker and
OSv are excluded. Includes the Finding 7 ablation (Kata 9p vs virtio-fs)
and the Section 3.3 caching-pitfall ablation.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig09_fio_throughput


def test_fig09_fio_throughput(benchmark, seed):
    figure = run_once(
        benchmark,
        fig09_fio_throughput,
        seed,
        repetitions=10,
        platforms=[
            "native", "docker", "lxc", "qemu", "cloud-hypervisor",
            "kata", "kata-virtiofs", "gvisor",
        ],
    )
    print()
    print(figure.render())
    native = figure.row("native").summary.mean
    for name in ("docker", "lxc", "qemu"):
        assert figure.row(name).summary.mean > 0.9 * native
    for name in ("gvisor", "kata"):
        assert figure.row(name).summary.mean < 0.62 * native
    # Finding 7: virtio-fs restores Kata to QEMU level.
    assert figure.row("kata-virtiofs").summary.mean > 1.5 * figure.row("kata").summary.mean
    assert figure.row("kata-virtiofs").summary.mean > 0.85 * figure.row("qemu").summary.mean


def test_fig09_host_cache_pitfall(benchmark, seed):
    """Without dropping the host cache, QEMU 'beats' bare metal."""
    figure = run_once(
        benchmark,
        fig09_fio_throughput,
        seed,
        repetitions=5,
        platforms=["native", "qemu"],
        drop_host_cache=False,
    )
    print()
    print(figure.render())
    assert figure.row("qemu").summary.mean > figure.row("native").summary.mean

"""CI benchmark smoke: serial vs. parallel-backend determinism gates.

Runs a small figure subset through ``BenchmarkSuite(quick=True)`` —
once on the serial backend, once across a figure-level process pool,
once with the flat (platform x rep) grid pool (``grid_jobs``), once
with an explicit non-dividing ``--chunk-size`` on that grid pool, and
(when ``--remote-workers`` names a fleet) once through the remote grid
backend plus a chunked remote leg — and asserts all summaries are
bit-identical, then archives
the pool run's JSON + manifest as the CI artifact. The emitted
``BENCH_smoke.json`` records per-backend wall times, seeding the repo's
performance trajectory.

With ``--store-url`` the smoke also gates the shared fleet store:
client A warms the named ``repro-bench store`` server, then client B —
an empty local cache, warm server — must report every figure as
``hit-remote`` with zero executed jobs and byte-identical result JSON.

With ``--fleet-url`` the smoke adds a dynamic-fleet leg: the roster is
resolved from the named ``repro-bench fleet`` coordinator at dispatch
time instead of hand-rostered, and the run must still be bit-identical
to serial (CI starts the second worker *after* this leg begins, so the
leg also exercises a mid-run join).

Usage::

    python benchmarks/ci_smoke.py --out bench-artifacts --jobs 2 --grid-jobs 2
    # with a worker started via `repro-bench worker --port 7077`:
    python benchmarks/ci_smoke.py --remote-workers 127.0.0.1:7077
    # with a store started via `repro-bench store --port 7078 --dir d`:
    python benchmarks/ci_smoke.py --store-url 127.0.0.1:7078
    # with a coordinator (`repro-bench fleet --port 7079`) and workers
    # registered to it via `repro-bench worker --fleet 127.0.0.1:7079`:
    python benchmarks/ci_smoke.py --fleet-url 127.0.0.1:7079
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import time

# Allow running from a checkout without installation.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.suite import BenchmarkSuite  # noqa: E402

#: Small, fast subset spanning bar figures, series figures, and the
#: deterministic HAP table. fig05 is the acceptance gate for grid-level
#: parallelism (widest roster: 9 platforms).
SMOKE_FIGURES = ["fig05", "cpu-prime", "fig11", "fig12", "fig17", "fig18"]


def run_backend(
    seed: int,
    jobs: int,
    figures: list[str],
    grid_jobs: int = 1,
    workers: tuple[str, ...] = (),
    chunk_size: int | None = None,
    fleet_url: str | None = None,
) -> tuple[BenchmarkSuite, float]:
    suite = BenchmarkSuite(
        seed=seed, quick=True, jobs=jobs, grid_jobs=grid_jobs, workers=workers,
        chunk_size=chunk_size, fleet_url=fleet_url,
    )
    started = time.perf_counter()
    suite.run_all(figures)
    return suite, time.perf_counter() - started


def compare(
    reference: BenchmarkSuite, candidate: BenchmarkSuite, figures: list[str]
) -> list[str]:
    """Figure ids whose summaries differ between the two suites."""
    return [
        figure_id
        for figure_id in figures
        if reference.run_figure(figure_id).comparable_dict()
        != candidate.run_figure(figure_id).comparable_dict()
    ]


def run_store_gate(
    seed: int, figures: list[str], store_url: str, out: pathlib.Path,
    reference: BenchmarkSuite,
) -> dict:
    """The shared fleet store gate: warm server, cold client, zero work.

    Client A (no local tier) computes the figures and publishes them to
    the store server; client B reads through an empty local cache and
    must be satisfied entirely by ``hit-remote`` reads — zero executed
    jobs, byte-identical JSON against the serial reference.
    """
    client_a = BenchmarkSuite(seed=seed, quick=True, store_url=store_url)
    started = time.perf_counter()
    client_a.run_all(figures)
    warm_wall = time.perf_counter() - started

    # The local tier must start empty or the gate false-fails on a rerun
    # (a warm leftover dir turns every hit-remote into hit-local).
    local_tier = out / "store-gate-local"
    shutil.rmtree(local_tier, ignore_errors=True)
    client_b = BenchmarkSuite(
        seed=seed, quick=True, store_url=store_url, cache_dir=local_tier
    )
    started = time.perf_counter()
    client_b.run_all(figures)
    cold_wall = time.perf_counter() - started
    report = client_b.last_report
    dispositions = {r.figure_id: r.cache for r in report.records}
    not_remote = sorted(f for f, cache in dispositions.items() if cache != "hit-remote")
    # comparable_dict equality == byte-identical canonical JSON (both
    # sides serialize the same JSON-ready dicts), so the one compare()
    # helper is the single source of truth for every bit-identity gate.
    mismatches = compare(reference, client_b, figures)
    return {
        "store_url": store_url,
        "warm_wall_s": round(warm_wall, 4),
        "cold_wall_s": round(cold_wall, 4),
        "executed": report.executed,
        "dispositions": dispositions,
        "not_remote": not_remote,
        "mismatches": mismatches,
        "ok": report.executed == 0 and not not_remote and not mismatches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=2, help="pool width for the parallel leg")
    parser.add_argument(
        "--grid-jobs", type=int, default=2,
        help="pool width for the flat-grid leg",
    )
    parser.add_argument("--out", default="bench-artifacts", help="artifact directory")
    parser.add_argument(
        "--figures", nargs="*", default=SMOKE_FIGURES, help="figure subset to exercise"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=7, metavar="N",
        help="explicit slab size for the chunked bit-identity legs; the "
             "default 7 deliberately does not divide any smoke grid width",
    )
    parser.add_argument(
        "--remote-workers", default=None, metavar="HOST:PORT[,...]",
        help="also gate serial vs the remote grid backend against this "
             "worker fleet (each member: repro-bench worker --port P)",
    )
    parser.add_argument(
        "--store-url", default=None, metavar="HOST:PORT",
        help="also gate the shared fleet store: warm this repro-bench "
             "store server with one client, then require a cold-cache "
             "client to run everything as hit-remote with zero executions",
    )
    parser.add_argument(
        "--fleet-url", default=None, metavar="HOST:PORT",
        help="also gate the dynamic fleet: resolve the roster from this "
             "repro-bench fleet coordinator at dispatch time and require "
             "the run to stay bit-identical to serial",
    )
    args = parser.parse_args(argv)
    remote_fleet = tuple(
        part.strip() for part in args.remote_workers.split(",") if part.strip()
    ) if args.remote_workers else ()

    serial_suite, serial_wall = run_backend(args.seed, 1, args.figures)
    parallel_suite, parallel_wall = run_backend(args.seed, args.jobs, args.figures)
    grid_suite, grid_wall = run_backend(args.seed, 1, args.figures, grid_jobs=args.grid_jobs)
    # The chunked leg: same grid pool, but explicit (non-dividing) slabs —
    # the bit-identity gate for chunk geometry on the process backend.
    chunked_suite, chunked_wall = run_backend(
        args.seed, 1, args.figures, grid_jobs=args.grid_jobs,
        chunk_size=args.chunk_size,
    )

    pool_mismatches = compare(serial_suite, parallel_suite, args.figures)
    grid_mismatches = compare(serial_suite, grid_suite, args.figures)
    chunked_mismatches = compare(serial_suite, chunked_suite, args.figures)
    remote_mismatches: list[str] = []
    chunked_remote_mismatches: list[str] = []
    remote_wall = None
    chunked_remote_wall = None
    if remote_fleet:
        remote_suite, remote_wall = run_backend(
            args.seed, 1, args.figures, workers=remote_fleet
        )
        remote_mismatches = compare(serial_suite, remote_suite, args.figures)
        chunked_remote_suite, chunked_remote_wall = run_backend(
            args.seed, 1, args.figures, workers=remote_fleet,
            chunk_size=args.chunk_size,
        )
        chunked_remote_mismatches = compare(
            serial_suite, chunked_remote_suite, args.figures
        )
    fleet_mismatches: list[str] = []
    fleet_wall = None
    fleet_roster: list[str] = []
    if args.fleet_url:
        fleet_suite, fleet_wall = run_backend(
            args.seed, 1, args.figures, fleet_url=args.fleet_url
        )
        fleet_mismatches = compare(serial_suite, fleet_suite, args.figures)
        # The roster that materialized — CI asserts the mid-run joiner
        # appears here, proving the elastic leg actually churned.
        fleet_roster = sorted(
            {
                worker
                for record in fleet_suite.last_report.records
                for worker in (record.workers or ())
            }
        )
    out = pathlib.Path(args.out)
    store_gate = None
    if args.store_url:
        store_gate = run_store_gate(
            args.seed, args.figures, args.store_url, out, serial_suite
        )

    mismatches = sorted(
        set(pool_mismatches) | set(grid_mismatches) | set(chunked_mismatches)
        | set(remote_mismatches) | set(chunked_remote_mismatches)
        | set(fleet_mismatches)
        | set(store_gate["mismatches"] if store_gate else ())
    )
    store_failed = store_gate is not None and not store_gate["ok"]
    status = "ok" if not mismatches and not store_failed else (
        f"MISMATCH: {', '.join(mismatches)}" if mismatches
        else f"STORE GATE FAILED: executed={store_gate['executed']} "
             f"not-remote={','.join(store_gate['not_remote'])}"
    )
    remote_note = (
        f" remote[{','.join(remote_fleet)}]={remote_wall:.2f}s"
        f" remote-chunk{args.chunk_size}={chunked_remote_wall:.2f}s"
        if remote_fleet else ""
    )
    store_note = (
        f" store[{args.store_url}] warm={store_gate['warm_wall_s']:.2f}s "
        f"cold={store_gate['cold_wall_s']:.2f}s executed={store_gate['executed']}"
        if store_gate else ""
    )
    fleet_note = (
        f" fleet[{args.fleet_url}]={fleet_wall:.2f}s "
        f"roster={','.join(fleet_roster) or '-'}"
        if args.fleet_url else ""
    )
    print(
        f"smoke[{','.join(args.figures)}] seed={args.seed} "
        f"serial={serial_wall:.2f}s jobs={args.jobs}={parallel_wall:.2f}s "
        f"grid-jobs={args.grid_jobs}={grid_wall:.2f}s "
        f"chunk{args.chunk_size}={chunked_wall:.2f}s{remote_note}{fleet_note}"
        f"{store_note} -> {status}"
    )
    parallel_suite.save_results(out)
    (out / "BENCH_smoke.json").write_text(
        json.dumps(
            {
                "seed": args.seed,
                "figures": args.figures,
                "serial_wall_s": round(serial_wall, 4),
                "parallel_wall_s": round(parallel_wall, 4),
                "grid_parallel_wall_s": round(grid_wall, 4),
                "chunked_wall_s": round(chunked_wall, 4),
                "remote_wall_s": round(remote_wall, 4) if remote_wall is not None else None,
                "chunked_remote_wall_s": (
                    round(chunked_remote_wall, 4)
                    if chunked_remote_wall is not None else None
                ),
                "jobs": args.jobs,
                "grid_jobs": args.grid_jobs,
                "chunk_size": args.chunk_size,
                "remote_workers": list(remote_fleet),
                "fleet_url": args.fleet_url,
                "fleet_wall_s": round(fleet_wall, 4) if fleet_wall is not None else None,
                "fleet_roster": fleet_roster,
                "identical": not mismatches,
                "mismatches": mismatches,
                "pool_mismatches": pool_mismatches,
                "grid_mismatches": grid_mismatches,
                "chunked_mismatches": chunked_mismatches,
                "remote_mismatches": remote_mismatches,
                "chunked_remote_mismatches": chunked_remote_mismatches,
                "fleet_mismatches": fleet_mismatches,
                "store_gate": store_gate,
            },
            indent=2,
        )
    )
    print(f"archived artifacts to {out}/")
    return 1 if mismatches or store_failed else 0


if __name__ == "__main__":
    sys.exit(main())

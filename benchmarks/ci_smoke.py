"""CI benchmark smoke: serial vs. parallel-backend determinism gates.

Runs a small figure subset through ``BenchmarkSuite(quick=True)`` —
once on the serial backend, once across a figure-level process pool,
once with the flat (platform x rep) grid pool (``grid_jobs``), and
(when ``--remote-workers`` names a fleet) once through the remote grid
backend — and asserts all summaries are bit-identical, then archives
the pool run's JSON + manifest as the CI artifact. The emitted
``BENCH_smoke.json`` records per-backend wall times, seeding the repo's
performance trajectory.

Usage::

    python benchmarks/ci_smoke.py --out bench-artifacts --jobs 2 --grid-jobs 2
    # with a worker started via `repro-bench worker --port 7077`:
    python benchmarks/ci_smoke.py --remote-workers 127.0.0.1:7077
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

# Allow running from a checkout without installation.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.suite import BenchmarkSuite  # noqa: E402

#: Small, fast subset spanning bar figures, series figures, and the
#: deterministic HAP table. fig05 is the acceptance gate for grid-level
#: parallelism (widest roster: 9 platforms).
SMOKE_FIGURES = ["fig05", "cpu-prime", "fig11", "fig12", "fig17", "fig18"]


def run_backend(
    seed: int,
    jobs: int,
    figures: list[str],
    grid_jobs: int = 1,
    workers: tuple[str, ...] = (),
) -> tuple[BenchmarkSuite, float]:
    suite = BenchmarkSuite(
        seed=seed, quick=True, jobs=jobs, grid_jobs=grid_jobs, workers=workers
    )
    started = time.perf_counter()
    suite.run_all(figures)
    return suite, time.perf_counter() - started


def compare(
    reference: BenchmarkSuite, candidate: BenchmarkSuite, figures: list[str]
) -> list[str]:
    """Figure ids whose summaries differ between the two suites."""
    return [
        figure_id
        for figure_id in figures
        if reference.run_figure(figure_id).comparable_dict()
        != candidate.run_figure(figure_id).comparable_dict()
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=2, help="pool width for the parallel leg")
    parser.add_argument(
        "--grid-jobs", type=int, default=2,
        help="pool width for the flat-grid leg",
    )
    parser.add_argument("--out", default="bench-artifacts", help="artifact directory")
    parser.add_argument(
        "--figures", nargs="*", default=SMOKE_FIGURES, help="figure subset to exercise"
    )
    parser.add_argument(
        "--remote-workers", default=None, metavar="HOST:PORT[,...]",
        help="also gate serial vs the remote grid backend against this "
             "worker fleet (each member: repro-bench worker --port P)",
    )
    args = parser.parse_args(argv)
    remote_fleet = tuple(
        part.strip() for part in args.remote_workers.split(",") if part.strip()
    ) if args.remote_workers else ()

    serial_suite, serial_wall = run_backend(args.seed, 1, args.figures)
    parallel_suite, parallel_wall = run_backend(args.seed, args.jobs, args.figures)
    grid_suite, grid_wall = run_backend(args.seed, 1, args.figures, grid_jobs=args.grid_jobs)

    pool_mismatches = compare(serial_suite, parallel_suite, args.figures)
    grid_mismatches = compare(serial_suite, grid_suite, args.figures)
    remote_mismatches: list[str] = []
    remote_wall = None
    if remote_fleet:
        remote_suite, remote_wall = run_backend(
            args.seed, 1, args.figures, workers=remote_fleet
        )
        remote_mismatches = compare(serial_suite, remote_suite, args.figures)
    mismatches = sorted(
        set(pool_mismatches) | set(grid_mismatches) | set(remote_mismatches)
    )
    status = "ok" if not mismatches else f"MISMATCH: {', '.join(mismatches)}"
    remote_note = (
        f" remote[{','.join(remote_fleet)}]={remote_wall:.2f}s" if remote_fleet else ""
    )
    print(
        f"smoke[{','.join(args.figures)}] seed={args.seed} "
        f"serial={serial_wall:.2f}s jobs={args.jobs}={parallel_wall:.2f}s "
        f"grid-jobs={args.grid_jobs}={grid_wall:.2f}s{remote_note} -> {status}"
    )

    out = pathlib.Path(args.out)
    parallel_suite.save_results(out)
    (out / "BENCH_smoke.json").write_text(
        json.dumps(
            {
                "seed": args.seed,
                "figures": args.figures,
                "serial_wall_s": round(serial_wall, 4),
                "parallel_wall_s": round(parallel_wall, 4),
                "grid_parallel_wall_s": round(grid_wall, 4),
                "remote_wall_s": round(remote_wall, 4) if remote_wall is not None else None,
                "jobs": args.jobs,
                "grid_jobs": args.grid_jobs,
                "remote_workers": list(remote_fleet),
                "identical": not mismatches,
                "mismatches": mismatches,
                "pool_mismatches": pool_mismatches,
                "grid_mismatches": grid_mismatches,
                "remote_mismatches": remote_mismatches,
            },
            indent=2,
        )
    )
    print(f"archived artifacts to {out}/")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())

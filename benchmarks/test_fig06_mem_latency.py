"""Benchmark: Figure 6 — tinymembench memory latency vs buffer size.

Paper shape: latency rises with buffer size (TLB misses); Firecracker is
the worst with the largest error bars, Cloud Hypervisor elevated, all
others near native. The hugepage ablation (Section 3.2 aside) shows the
~30 % latency reduction and excludes Kata.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig06_memory_latency


def test_fig06_memory_latency(benchmark, seed):
    figure = run_once(benchmark, fig06_memory_latency, seed, repetitions=10)
    print()
    print(figure.render())
    last = {s.platform: s.y_values[-1] for s in figure.series}
    assert set(sorted(last, key=last.get, reverse=True)[:2]) == {
        "firecracker", "osv-fc",
    }
    assert last["cloud-hypervisor"] > 1.15 * last["native"]
    assert last["kata"] < 1.15 * last["native"]


def test_fig06_hugepage_ablation(benchmark, seed):
    figure = run_once(
        benchmark, fig06_memory_latency, seed, repetitions=5, huge_pages=True
    )
    print()
    print(figure.render())
    assert "kata" not in [s.platform for s in figure.series]

"""Benchmark: Figure 12 — netperf P90 request/response latency.

Paper shape: bridge-based platforms (Docker, Kata, LXC) lead; OSv sits
just under the hypervisors; gVisor's P90 is 3-4x its competitors.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig12_netperf


def test_fig12_netperf(benchmark, seed):
    figure = run_once(benchmark, fig12_netperf, seed, repetitions=5)
    print()
    print(figure.render())
    bridges = max(figure.row(p).summary.mean for p in ("docker", "lxc", "kata"))
    hypervisors = min(
        figure.row(p).summary.mean
        for p in ("qemu", "firecracker", "cloud-hypervisor")
    )
    assert bridges < hypervisors
    assert figure.row("osv").summary.mean < hypervisors
    others = [
        r.summary.mean for r in figure.rows if r.platform not in ("gvisor",)
    ]
    ratio = figure.row("gvisor").summary.mean / (sum(others) / len(others))
    assert 2.5 < ratio < 6.0

"""Benchmark: Figure 14 — hypervisor boot CDF (300 startups).

Paper shape: Cloud Hypervisor fastest, then QEMU with qboot, plain QEMU,
Firecracker at ~350 ms, and QEMU's microvm (uVM) machine model slowest —
the reverse of Firecracker's reputation (Conclusion 5).
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig14_hypervisor_boot


def test_fig14_hypervisor_boot(benchmark, seed):
    figure = run_once(benchmark, fig14_hypervisor_boot, seed, startups=300)
    print()
    print(figure.render())
    means = {r.platform: r.summary.mean for r in figure.rows}
    assert (
        means["cloud-hypervisor"]
        < means["qemu-qboot"]
        < means["qemu"]
        < means["firecracker"]
        < means["qemu-microvm"]
    )
    assert 280 < means["firecracker"] < 420

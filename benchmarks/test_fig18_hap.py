"""Benchmark: Figure 18 — the extended HAP metric.

Paper shape: Firecracker invokes the most host-kernel functions of all
platforms (Finding 24); secure containers sit above regular containers
(Finding 26); Cloud Hypervisor very few (Finding 25); OSv the least
(Finding 27).
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig18_hap


def test_fig18_hap(benchmark, seed):
    figure = run_once(benchmark, fig18_hap, seed)
    print()
    print(figure.render())
    counts = {r.platform: r.summary.mean for r in figure.rows}
    assert counts["firecracker"] == max(counts.values())
    assert counts["osv"] == min(counts.values())
    assert counts["cloud-hypervisor"] < min(
        counts[p] for p in ("qemu", "docker", "lxc", "kata", "gvisor")
    )
    assert min(counts["gvisor"], counts["kata"]) > max(
        counts["docker"], counts["lxc"]
    )
    for row in figure.rows:
        assert row.extra["weighted_score"] > 0

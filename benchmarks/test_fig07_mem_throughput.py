"""Benchmark: Figure 7 — tinymembench copy throughput (regular + SSE2).

Paper shape: hypervisors underperform (QEMU trades throughput for
latency); Kata and OSv-under-QEMU stay near native.
"""

from benchmarks.conftest import run_once
from repro.core.figures import fig07_memory_throughput


def test_fig07_memory_throughput(benchmark, seed):
    figure = run_once(benchmark, fig07_memory_throughput, seed, repetitions=10)
    print()
    print(figure.render())
    native = figure.row("native").summary.mean
    assert figure.row("qemu").summary.mean < 0.92 * native
    assert figure.row("firecracker").summary.mean < 0.88 * native
    assert figure.row("kata").summary.mean > 0.93 * native
    assert figure.row("osv").summary.mean > 0.92 * native
    assert figure.row("cloud-hypervisor").summary.mean > 0.9 * native
